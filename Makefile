# Convenience targets for the RABIT reproduction.

.PHONY: install lint test bench fk-bench serve-bench shard-bench shard-soak examples campaign latency metrics montecarlo replay docs-check check clean

install:
	pip install -e .[dev]

# Byte-compiles everything unconditionally; runs ruff when it is on PATH
# (CI installs it — the runtime container deliberately has no extra deps).
lint:
	python -m compileall -q src tests benchmarks examples
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; skipped style checks (compileall ran)"; \
	fi

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

fk-bench:
	PYTHONPATH=src python -m pytest benchmarks/test_fk_throughput.py

# Multi-session guard-service throughput (K=8 vs sequential, hard 3x gate).
serve-bench:
	PYTHONPATH=src python -m pytest benchmarks/test_serve_throughput.py

# Sharded-service scale-out (N=2 vs N=1 workers; gates on >= 4 cores).
shard-bench:
	PYTHONPATH=src python -m pytest benchmarks/test_shard_throughput.py

# Sharded-service soak: merged cross-worker stats must balance exactly.
shard-soak:
	python scripts/shard_soak.py

examples:
	python examples/quickstart.py
	python examples/solubility_experiment.py
	python examples/multi_robot.py
	python examples/three_stage_validation.py
	python examples/failsafe_and_sensors.py

campaign:
	python -m repro campaign

latency:
	python -m repro latency

metrics:
	python -m repro metrics

montecarlo:
	python -m repro montecarlo --samples 40 --workers auto

# Replay the committed golden traces: any byte-level divergence in the
# verdict/state-delta stream fails the target (and prints the first
# diff).
replay:
	PYTHONPATH=src python -m repro replay --diff tests/fixtures/traces/*.trace.jsonl

# Docs stay executable: every relative markdown link must resolve and
# every plain `python -m repro ...` line in README/docs fenced blocks
# must exit 0 (also a ci_gates.sh step).
docs-check:
	bash scripts/check_docs_links.sh
	bash scripts/check_docs_cmds.sh

# The CI gate: the exact sequence GitHub Actions runs, via the shared
# script (tier-1 suite, differential harnesses, golden-trace replay,
# benchmark gates, the perf-trend regression check, and the docs
# link/command checks).  Local runs
# include the 4-worker parallel differential; 2-core CI runners leave
# CI_GATES_FULL unset and skip it (the nightly tier covers it).
check:
	CI_GATES_FULL=1 bash scripts/ci_gates.sh

clean:
	rm -rf .pytest_cache benchmarks/results __pycache__
	find . -name "__pycache__" -type d -exec rm -rf {} +
