# Convenience targets for the RABIT reproduction.

.PHONY: install test bench examples campaign latency clean

install:
	pip install -e .[dev]

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	python examples/quickstart.py
	python examples/solubility_experiment.py
	python examples/multi_robot.py
	python examples/three_stage_validation.py
	python examples/failsafe_and_sensors.py

campaign:
	python -m repro campaign

latency:
	python -m repro latency

clean:
	rm -rf .pytest_cache benchmarks/results __pycache__
	find . -name "__pycache__" -type d -exec rm -rf {} +
