"""CLI argument hygiene for the worker/session knobs, plus `serve` wiring.

``--workers 0`` used to be a silent alias for "one per CPU"; it now has
an explicit spelling (``auto``) and non-positive or garbage counts are
rejected at parse time with exit code 2 — across every subcommand that
grew the knob (montecarlo, campaign) and the serve front-end's
``--sessions``/``--queue-size``/``--watermark`` family.
"""

import argparse

import pytest

from repro.cli import _positive_int, _workers_type, main


def _exit_code(argv, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    return excinfo.value.code, capsys.readouterr().err


# -- the argparse types -------------------------------------------------------


def test_positive_int_accepts_and_rejects():
    assert _positive_int("3") == 3
    for bad in ("0", "-1", "four", "1.5", ""):
        with pytest.raises(argparse.ArgumentTypeError, match="positive integer"):
            _positive_int(bad)


def test_workers_type_maps_auto_to_engine_sentinel():
    assert _workers_type("auto") == 0
    assert _workers_type("AUTO") == 0
    assert _workers_type(" auto ") == 0
    assert _workers_type("4") == 4
    for bad in ("0", "-2", "garbage"):
        with pytest.raises(argparse.ArgumentTypeError, match="or 'auto'"):
            _workers_type(bad)


# -- rejection at the real parser ---------------------------------------------


@pytest.mark.parametrize("workers", ["0", "-3", "garbage"])
@pytest.mark.parametrize("subcommand", ["montecarlo", "campaign"])
def test_non_positive_workers_exit_2(subcommand, workers, capsys):
    code, err = _exit_code([subcommand, "--workers", workers], capsys)
    assert code == 2
    assert "positive integer or 'auto'" in err


def test_non_positive_montecarlo_samples_exit_2(capsys):
    code, err = _exit_code(["montecarlo", "--samples", "0"], capsys)
    assert code == 2
    assert "positive integer" in err


@pytest.mark.parametrize(
    "flag", ["--sessions", "--queue-size", "--watermark", "--max-batch", "--port"]
)
def test_serve_rejects_non_positive_counts(flag, capsys):
    code, err = _exit_code(["serve", flag, "0"], capsys)
    assert code == 2
    assert "positive integer" in err
    code, err = _exit_code(["serve", flag, "-1"], capsys)
    assert code == 2


def test_serve_subcommand_is_wired(capsys):
    # --help exits 0 and mentions the serve knobs, proving the
    # subparser exists without starting a server.
    with pytest.raises(SystemExit) as excinfo:
        main(["serve", "--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert "--sessions" in out and "--socket" in out
