"""CLI argument hygiene for the worker/session knobs, plus `serve` wiring.

``--workers 0`` used to be a silent alias for "one per CPU"; it now has
an explicit spelling (``auto``) and non-positive or garbage counts are
rejected at parse time with exit code 2 — across every subcommand that
grew the knob (montecarlo, campaign) and the serve front-end's
``--sessions``/``--queue-size``/``--watermark`` family.
"""

import argparse

import pytest

from repro.cli import _positive_int, _workers_type, main


def _exit_code(argv, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    return excinfo.value.code, capsys.readouterr().err


# -- the argparse types -------------------------------------------------------


def test_positive_int_accepts_and_rejects():
    assert _positive_int("3") == 3
    for bad in ("0", "-1", "four", "1.5", ""):
        with pytest.raises(argparse.ArgumentTypeError, match="positive integer"):
            _positive_int(bad)


def test_workers_type_maps_auto_to_engine_sentinel():
    assert _workers_type("auto") == 0
    assert _workers_type("AUTO") == 0
    assert _workers_type(" auto ") == 0
    assert _workers_type("4") == 4
    for bad in ("0", "-2", "garbage"):
        with pytest.raises(argparse.ArgumentTypeError, match="or 'auto'"):
            _workers_type(bad)


# -- rejection at the real parser ---------------------------------------------


@pytest.mark.parametrize("workers", ["0", "-3", "garbage"])
@pytest.mark.parametrize("subcommand", ["montecarlo", "campaign"])
def test_non_positive_workers_exit_2(subcommand, workers, capsys):
    code, err = _exit_code([subcommand, "--workers", workers], capsys)
    assert code == 2
    assert "positive integer or 'auto'" in err


def test_non_positive_montecarlo_samples_exit_2(capsys):
    code, err = _exit_code(["montecarlo", "--samples", "0"], capsys)
    assert code == 2
    assert "positive integer" in err


@pytest.mark.parametrize(
    "flag", ["--sessions", "--queue-size", "--watermark", "--max-batch", "--port"]
)
def test_serve_rejects_non_positive_counts(flag, capsys):
    code, err = _exit_code(["serve", flag, "0"], capsys)
    assert code == 2
    assert "positive integer" in err
    code, err = _exit_code(["serve", flag, "-1"], capsys)
    assert code == 2


def test_serve_subcommand_is_wired(capsys):
    # --help exits 0 and mentions the serve knobs, proving the
    # subparser exists without starting a server.
    with pytest.raises(SystemExit) as excinfo:
        main(["serve", "--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert "--sessions" in out and "--socket" in out


# -- non-negative float knobs -------------------------------------------------


def test_nonneg_float_accepts_and_rejects():
    from repro.cli import _nonneg_float

    assert _nonneg_float("0") == 0.0
    assert _nonneg_float("0.015") == 0.015
    assert _nonneg_float("2") == 2.0
    for bad in ("-1", "-0.5"):
        with pytest.raises(argparse.ArgumentTypeError, match="non-negative"):
            _nonneg_float(bad)
    for bad in ("nan", "inf", "-inf"):
        with pytest.raises(argparse.ArgumentTypeError, match="finite"):
            _nonneg_float(bad)
    with pytest.raises(argparse.ArgumentTypeError, match="non-negative"):
        _nonneg_float("fast")


@pytest.mark.parametrize("value", ["-1", "-0.015", "nan", "inf", "garbage"])
def test_serve_rejects_bad_io_latency(value, capsys):
    code, err = _exit_code(["serve", "--io-latency", value], capsys)
    assert code == 2
    assert "--io-latency" in err


# -- shard flags --------------------------------------------------------------


@pytest.mark.parametrize("flag", ["--shard-workers", "--metrics-port"])
def test_shard_flags_reject_non_positive(flag, capsys):
    code, err = _exit_code(["serve", flag, "0"], capsys)
    assert code == 2
    assert "positive integer" in err


def test_shard_flags_are_wired(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["serve", "--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert "--shard-workers" in out
    assert "--metrics-port" in out
    assert "--obs" in out


def test_metrics_port_requires_shard_mode(capsys):
    # The flag parses, but the single-process path refuses it with the
    # same exit code argparse uses for bad usage.
    code = main(["serve", "--metrics-port", "9115"])
    assert code == 2
    assert "--shard-workers" in capsys.readouterr().err
