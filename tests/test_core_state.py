"""Unit tests for RABIT's discrete state model."""

import pytest

from repro.core.state import LabState, OBSERVABLE_VARS, TRACKED_VARS


class TestVariableSets:
    def test_observable_and_tracked_are_disjoint(self):
        assert not (OBSERVABLE_VARS & TRACKED_VARS)

    def test_position_is_not_a_state_variable(self):
        # Load-bearing for the evaluation: silent skips and mid-space
        # collisions are invisible precisely because Cartesian position
        # is not part of the discrete state (Table II).
        assert "position" not in OBSERVABLE_VARS | TRACKED_VARS


class TestGetSet:
    def test_roundtrip(self):
        state = LabState()
        state.set("door_status", "doser", "open")
        assert state.get("door_status", "doser") == "open"

    def test_default_for_missing_key(self):
        assert LabState().get("door_status", "ghost", "closed") == "closed"

    def test_unknown_variable_rejected(self):
        with pytest.raises(KeyError, match="unknown state variable"):
            LabState().set("temperature", "x", 1)
        with pytest.raises(KeyError):
            LabState().get("temperature", "x")

    def test_keys_where(self):
        state = LabState()
        state.set("robot_inside", "a", "doser")
        state.set("robot_inside", "b", "doser")
        state.set("robot_inside", "c", None)
        assert sorted(state.keys_where("robot_inside", "doser")) == ["a", "b"]

    def test_vial_at(self):
        state = LabState()
        state.set("container_at", "v1", "slot")
        state.set("container_at", "v2", None)
        assert state.vial_at("slot") == "v1"
        assert state.vial_at("elsewhere") is None


class TestSnapshots:
    def test_copy_is_independent(self):
        a = LabState()
        a.set("door_status", "d", "open")
        b = a.copy()
        b.set("door_status", "d", "closed")
        assert a.get("door_status", "d") == "open"

    def test_merge_observed_overrides_observables(self):
        expected = LabState()
        expected.set("door_status", "d", "closed")
        expected.set("robot_holding", "arm", "v1")  # tracked
        observed = LabState()
        observed.set("door_status", "d", "open")
        merged = expected.merge_observed(observed)
        assert merged.get("door_status", "d") == "open"
        assert merged.get("robot_holding", "arm") == "v1"  # carried forward

    def test_merge_observed_keeps_unreported_observables(self):
        expected = LabState()
        expected.set("door_status", "d", "closed")
        merged = expected.merge_observed(LabState())
        assert merged.get("door_status", "d") == "closed"


class TestDiff:
    def test_no_mismatch_when_equal(self):
        a = LabState()
        a.set("door_status", "d", "open")
        b = a.copy()
        assert a.diff_observable(b) == []

    def test_detects_door_mismatch(self):
        expected = LabState()
        expected.set("door_status", "d", "open")
        actual = LabState()
        actual.set("door_status", "d", "closed")
        diff = expected.diff_observable(actual)
        assert diff == [("door_status", "d", "open", "closed")]

    def test_ignores_keys_missing_on_either_side(self):
        expected = LabState()
        expected.set("door_status", "d", "open")
        actual = LabState()
        actual.set("door_status", "other", "closed")
        assert expected.diff_observable(actual) == []

    def test_float_comparison_uses_tolerance(self):
        expected = LabState()
        expected.set("dispensed_mg", "doser", 5.0)
        actual = LabState()
        actual.set("dispensed_mg", "doser", 5.0 + 1e-9)
        assert expected.diff_observable(actual) == []
        actual.set("dispensed_mg", "doser", 5.5)
        assert expected.diff_observable(actual) != []

    def test_tracked_vars_never_diffed(self):
        expected = LabState()
        expected.set("robot_holding", "arm", "v1")
        actual = LabState()
        actual.set("robot_holding", "arm", None)
        assert expected.diff_observable(actual) == []
