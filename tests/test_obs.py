"""Unit tests for the ``repro.obs`` observability layer.

Covers the ISSUE-2 checklist: span nesting/ordering under the virtual
clock, histogram bucket edges, Prometheus text-format escaping, the ring
buffer's drop accounting, and the disabled-by-default contract.
"""

from __future__ import annotations

import json

import pytest

from repro.core.clock import VirtualClock
from repro.obs import OBS, Observability
from repro.obs.export import (
    export_metrics_json,
    export_metrics_prometheus,
    export_trace_jsonl,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import Span, SpanCollector


@pytest.fixture(autouse=True)
def _clean_global_obs():
    """The global runtime must leave every test the way it arrived: off."""
    OBS.disable()
    OBS.reset()
    yield
    OBS.disable()
    OBS.reset()


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------


class TestSpans:
    def test_disabled_by_default(self):
        obs = Observability()
        assert not obs.enabled
        with obs.span("anything") as span:
            assert span is None
        assert len(obs.collector) == 0
        assert obs.collector.recorded == 0

    def test_nesting_parent_ids_and_ordering(self):
        obs = Observability().enable()
        with obs.span("outer") as outer:
            with obs.span("middle") as middle:
                with obs.span("inner") as inner:
                    pass
            with obs.span("sibling") as sibling:
                pass
        spans = obs.collector.spans()
        # Start order, not completion order.
        assert [s.name for s in spans] == ["outer", "middle", "inner", "sibling"]
        assert outer.parent_id is None
        assert middle.parent_id == outer.span_id
        assert inner.parent_id == middle.span_id
        assert sibling.parent_id == outer.span_id
        # Wall timestamps nest properly.
        assert outer.start_wall <= middle.start_wall <= middle.end_wall
        assert middle.end_wall <= outer.end_wall

    def test_virtual_clock_timestamps(self):
        clock = VirtualClock()
        obs = Observability().enable()
        obs.bind_clock(clock)
        clock.advance(10.0, "setup")
        with obs.span("outer"):
            clock.advance(1.5, "experiment")
            with obs.span("inner") as inner:
                clock.advance(0.5, "experiment")
        outer, inner_recorded = obs.collector.spans()
        assert outer.start_virtual == 10.0
        assert outer.end_virtual == 12.0
        assert outer.duration_virtual == 2.0
        assert inner_recorded.start_virtual == 11.5
        assert inner_recorded.duration_virtual == 0.5
        # The clock is only read, never advanced, by the spans themselves.
        assert clock.now == 12.0

    def test_unbound_clock_yields_none_virtual(self):
        obs = Observability().enable()
        with obs.span("s"):
            pass
        (span,) = obs.collector.spans()
        assert span.start_virtual is None
        assert span.duration_virtual is None
        assert span.duration_wall is not None and span.duration_wall >= 0.0

    def test_span_attributes_and_exception_tagging(self):
        obs = Observability().enable()
        with pytest.raises(ValueError):
            with obs.span("risky", device="d1"):
                raise ValueError("boom")
        (span,) = obs.collector.spans()
        assert span.attributes["device"] == "d1"
        assert span.attributes["error"] == "ValueError"

    def test_traced_decorator(self):
        obs = Observability().enable()

        @obs.traced("my.func", flavor="test")
        def add(a, b):
            return a + b

        assert add(2, 3) == 5
        (span,) = obs.collector.spans()
        assert span.name == "my.func"
        assert span.attributes["flavor"] == "test"
        obs.disable()
        assert add(1, 1) == 2  # no new spans while disabled
        assert obs.collector.recorded == 1

    def test_ring_buffer_drops_oldest(self):
        collector = SpanCollector(capacity=3)
        for i in range(5):
            collector.record(Span(name=f"s{i}", span_id=i, parent_id=None, start_wall=0.0))
        assert len(collector) == 3
        assert collector.recorded == 5
        assert collector.dropped == 2
        assert [s.name for s in collector.spans()] == ["s2", "s3", "s4"]

    def test_jsonl_roundtrip(self, tmp_path):
        obs = Observability().enable()
        obs.bind_clock(VirtualClock())
        with obs.span("outer", device="d"):
            with obs.span("inner"):
                pass
        path = tmp_path / "trace.jsonl"
        count = export_trace_jsonl(obs, path)
        lines = path.read_text().strip().splitlines()
        assert count == 2 and len(lines) == 2
        docs = [json.loads(line) for line in lines]
        assert docs[0]["name"] == "outer"
        assert docs[1]["parent_id"] == docs[0]["span_id"]
        assert docs[0]["attributes"] == {"device": "d"}
        assert docs[0]["start_virtual"] == 0.0


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_labels_and_total(self):
        c = Counter("cmds_total", "commands", labels=("device",))
        c.inc(1, device="a")
        c.inc(2, device="a")
        c.inc(5, device="b")
        assert c.value(device="a") == 3
        assert c.value(device="b") == 5
        assert c.value(device="never") == 0
        assert c.total() == 8

    def test_counter_rejects_negative_and_wrong_labels(self):
        c = Counter("c_total", labels=("x",))
        with pytest.raises(ValueError):
            c.inc(-1, x="a")
        with pytest.raises(ValueError):
            c.inc(1, wrong="a")
        with pytest.raises(ValueError):
            c.inc(1)

    def test_gauge_set_inc(self):
        g = Gauge("occupancy")
        g.set(10)
        g.inc(-3)
        assert g.value() == 7

    def test_histogram_bucket_edges(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 5.0))
        # The le convention: a value equal to the bound lands IN the bucket.
        h.observe(1.0)
        h.observe(1.0000001)
        h.observe(2.0)
        h.observe(5.0)
        h.observe(5.0000001)  # beyond the last finite bound -> +Inf only
        counts = h.counts()
        assert counts["1.0"] == 1
        assert counts["2.0"] == 2  # 1.0000001 and 2.0
        assert counts["5.0"] == 1
        assert counts["+Inf"] == 1
        assert counts["count"] == 5
        assert counts["sum"] == pytest.approx(14.0000002)

    def test_histogram_cumulative_exposition(self):
        h = Histogram("lat", "latency", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        h.observe(99.0)
        lines = h.expose()
        assert 'lat_bucket{le="1.0"} 1' in lines
        assert 'lat_bucket{le="2.0"} 2' in lines
        assert 'lat_bucket{le="+Inf"} 3' in lines
        assert "lat_sum 101" in lines
        assert "lat_count 3" in lines

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))

    def test_registry_get_or_create_and_kind_mismatch(self):
        reg = MetricsRegistry()
        c1 = reg.counter("x_total", "first")
        c2 = reg.counter("x_total", "second help is ignored")
        assert c1 is c2
        with pytest.raises(ValueError):
            reg.gauge("x_total")
        with pytest.raises(ValueError):
            reg.counter("x_total", labels=("surprise",))

    def test_registry_reset_keeps_handles_valid(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total")
        c.inc(5)
        reg.reset()
        assert c.value() == 0
        c.inc(1)
        assert reg.counter("x_total").value() == 1

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            Counter("9starts_with_digit")
        with pytest.raises(ValueError):
            Counter("ok_name", labels=("bad-label",))


# ---------------------------------------------------------------------------
# Prometheus text format
# ---------------------------------------------------------------------------


class TestPrometheusFormat:
    def test_headers_and_values(self):
        reg = MetricsRegistry()
        reg.counter("requests_total", "Requests served.", labels=("verb",)).inc(
            3, verb="GET"
        )
        reg.gauge("depth", "Queue depth.").set(2)
        text = reg.to_prometheus()
        assert "# HELP requests_total Requests served." in text
        assert "# TYPE requests_total counter" in text
        assert 'requests_total{verb="GET"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 2" in text
        assert text.endswith("\n")

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        c = reg.counter("odd_total", "odd labels", labels=("path",))
        c.inc(1, path='C:\\lab\n"deck"')
        text = reg.to_prometheus()
        assert 'odd_total{path="C:\\\\lab\\n\\"deck\\""} 1' in text

    def test_help_escaping(self):
        reg = MetricsRegistry()
        reg.counter("h_total", "line one\nline two \\ backslash")
        text = reg.to_prometheus()
        assert "# HELP h_total line one\\nline two \\\\ backslash" in text
        # The literal newline must NOT survive inside the HELP line.
        for line in text.splitlines():
            if line.startswith("# HELP h_total"):
                assert "\\n" in line

    def test_untouched_unlabelled_series_export_zero(self):
        reg = MetricsRegistry()
        reg.counter("quiet_total", "never incremented")
        assert "quiet_total 0" in reg.to_prometheus()

    def test_metric_names_valid_for_prometheus(self):
        """Every metric the instrumentation registers has a legal name."""
        import re

        # Importing the instrumented modules registers their handles on OBS.
        import repro.core.interceptor  # noqa: F401
        import repro.core.monitor  # noqa: F401
        import repro.geometry.batch  # noqa: F401
        import repro.simulator.extended  # noqa: F401

        name_re = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
        snap = OBS.registry.snapshot()
        names = [n for group in snap.values() for n in group]
        assert len(names) >= 10
        for name in names:
            assert name_re.match(name), name

    def test_export_files(self, tmp_path):
        obs = Observability()
        obs.registry.counter("a_total", "a").inc(4)
        prom = tmp_path / "m.prom"
        js = tmp_path / "m.json"
        export_metrics_prometheus(obs, prom)
        snapshot = export_metrics_json(obs, js)
        assert "a_total 4" in prom.read_text()
        on_disk = json.loads(js.read_text())
        assert on_disk == snapshot
        assert on_disk["counters"]["a_total"]["values"][0]["value"] == 4


# ---------------------------------------------------------------------------
# Runtime summary
# ---------------------------------------------------------------------------


def test_summary_shape_on_empty_runtime():
    obs = Observability()
    summary = obs.summary()
    assert summary["commands_intercepted"] == 0
    assert summary["verdicts"] == {}
    assert summary["rule_cache_hit_rate"] == 0.0
    assert summary["spans_recorded"] == 0
