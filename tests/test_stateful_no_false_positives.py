"""Stateful property test: RABIT never false-alarms on legal operation.

The paper's strongest usability claim is that "throughout testing, RABIT
never produced any false positives".  This machine generates *random but
legal* command sequences on the Hein deck — door cycles, vial ferrying,
dosing, heating, capping — tracking just enough bookkeeping to only emit
commands a careful researcher could issue.  The invariants:

- RABIT raises no alert on any emitted command;
- the ground-truth world records no damage;
- RABIT's tracked belief about the vial's location matches ground truth.

Any false positive (or physics/belief divergence) surfaces as a minimal
failing command sequence, courtesy of hypothesis shrinking.
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.lab.hein import build_hein_deck, make_hein_rabit


class LegalOperationMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.deck = build_hein_deck()
        self.rabit, self.proxies, _ = make_hein_rabit(self.deck)
        self.ur3e = self.proxies["ur3e"]
        self.dosing = self.proxies["dosing_device"]
        self.hotplate = self.proxies["hotplate"]
        self.vial = self.proxies["vial_1"]
        # Script-side bookkeeping (what a careful researcher would know).
        self.door_open = False
        self.holding = False
        self.vial_at = "grid_a1"  # "grid_a1" | "dosing_interior" | "hotplate_top"
        self.arm_at = "home"
        self.vial_solid = 0.0
        self.stoppered = True
        self.hotplate_on = False

    # -- door cycles ---------------------------------------------------------

    @precondition(lambda self: not self.door_open and self.arm_at != "dosing_interior")
    @rule()
    def open_door(self):
        self.dosing.open_door()
        self.door_open = True

    @precondition(
        lambda self: self.door_open
        and self.arm_at != "dosing_interior"
        and not self.dosing_running()
    )
    @rule()
    def close_door(self):
        self.dosing.close_door()
        self.door_open = False

    def dosing_running(self):
        return bool(self.deck.devices["dosing_device"].active)

    # -- arm motion -------------------------------------------------------------

    @rule()
    def go_home(self):
        self.ur3e.go_to_home_pose()
        self.arm_at = "home"

    @precondition(lambda self: self.arm_at != "dosing_interior")
    @rule()
    def stage_at_grid(self):
        self.ur3e.move_to_location("grid_a1_safe")
        self.arm_at = "grid_a1_safe"

    @precondition(lambda self: self.arm_at != "dosing_interior")
    @rule()
    def stage_at_hotplate(self):
        self.ur3e.move_to_location("hotplate_safe")
        self.arm_at = "hotplate_safe"

    # -- vial ferrying --------------------------------------------------------------

    @precondition(
        lambda self: not self.holding and self.vial_at == "grid_a1"
        and self.arm_at == "grid_a1_safe"
    )
    @rule()
    def pick_from_grid(self):
        self.ur3e.pick_up_vial("grid_a1")
        self.ur3e.move_to_location("grid_a1_safe")
        self.holding = True
        self.vial_at = "held"

    @precondition(lambda self: self.holding and self.arm_at == "grid_a1_safe")
    @rule()
    def place_on_grid(self):
        self.ur3e.place_vial("grid_a1")
        self.ur3e.move_to_location("grid_a1_safe")
        self.holding = False
        self.vial_at = "grid_a1"

    @precondition(
        lambda self: self.holding and self.door_open and self.arm_at != "dosing_interior"
    )
    @rule()
    def place_in_dosing(self):
        self.ur3e.move_to_location("dosing_approach")
        self.ur3e.place_vial("dosing_interior")
        self.ur3e.move_to_location("dosing_approach")
        self.arm_at = "dosing_approach"
        self.holding = False
        self.vial_at = "dosing_interior"

    @precondition(
        lambda self: not self.holding
        and self.vial_at == "dosing_interior"
        and self.door_open
    )
    @rule()
    def pick_from_dosing(self):
        self.ur3e.move_to_location("dosing_approach")
        self.ur3e.pick_up_vial("dosing_interior")
        self.ur3e.move_to_location("dosing_approach")
        self.arm_at = "dosing_approach"
        self.holding = True
        self.vial_at = "held"

    @precondition(
        lambda self: self.holding and self.arm_at == "hotplate_safe" and not self.hotplate_on
    )
    @rule()
    def place_on_hotplate(self):
        self.ur3e.place_vial("hotplate_top")
        self.ur3e.move_to_location("hotplate_safe")
        self.holding = False
        self.vial_at = "hotplate_top"

    @precondition(
        lambda self: not self.holding
        and self.vial_at == "hotplate_top"
        and not self.hotplate_on
        and self.arm_at == "hotplate_safe"
    )
    @rule()
    def pick_from_hotplate(self):
        self.ur3e.pick_up_vial("hotplate_top")
        self.ur3e.move_to_location("hotplate_safe")
        self.holding = True
        self.vial_at = "held"

    # -- stopper ---------------------------------------------------------------------

    @precondition(lambda self: self.stoppered and self.vial_at == "grid_a1")
    @rule()
    def decap(self):
        self.vial.decap_vial()
        self.stoppered = False

    @precondition(lambda self: not self.stoppered and self.vial_at == "grid_a1")
    @rule()
    def cap(self):
        self.vial.cap_vial()
        self.stoppered = True

    # -- dosing -----------------------------------------------------------------------

    @precondition(
        lambda self: self.vial_at == "dosing_interior"
        and not self.door_open  # closed for dosing (G9)
        and not self.stoppered  # open vial (G7)
        and self.vial_solid <= 4.0  # capacity headroom (G8)
    )
    @rule()
    def dose_solid(self):
        self.dosing.dose_solid(3.0)
        self.dosing.stop_action()
        self.vial_solid += 3.0

    # -- heating -----------------------------------------------------------------------

    @precondition(
        lambda self: self.vial_at == "hotplate_top" and self.vial_solid > 0
        and not self.hotplate_on
    )
    @rule()
    def heat(self):
        self.hotplate.stir_solution(60.0)
        self.hotplate_on = True

    @precondition(lambda self: self.hotplate_on)
    @rule()
    def stop_heat(self):
        self.hotplate.stop_action()
        self.hotplate_on = False

    # -- invariants ----------------------------------------------------------------------

    @invariant()
    def no_false_positives(self):
        assert self.rabit.alert_count == 0, [str(a) for a in self.rabit.alerts]

    @invariant()
    def no_physical_damage(self):
        assert self.deck.world.damage_log == ()

    @invariant()
    def belief_matches_ground_truth(self):
        believed = self.rabit.state.get("container_at", "vial_1")
        actual = self.deck.vials["vial_1"].resting_at
        assert believed == actual


LegalOperationMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=20, deadline=None
)
TestLegalOperations = LegalOperationMachine.TestCase
