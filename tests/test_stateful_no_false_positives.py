"""Stateful property test: RABIT never false-alarms on legal operation.

The paper's strongest usability claim is that "throughout testing, RABIT
never produced any false positives".  This machine generates *random but
legal* command sequences on the Hein deck — door cycles, vial ferrying,
dosing, heating, capping — tracking just enough bookkeeping to only emit
commands a careful researcher could issue.  The invariants:

- RABIT raises no alert on any emitted command;
- the ground-truth world records no damage;
- RABIT's tracked belief about the vial's location matches ground truth.

Any false positive (or physics/belief divergence) surfaces as a minimal
failing command sequence, courtesy of hypothesis shrinking.
"""

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core.monitor import RabitOptions
from repro.lab.hein import build_hein_deck, make_hein_rabit


class LegalOperationMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.deck = build_hein_deck()
        self.rabit, self.proxies, _ = make_hein_rabit(self.deck)
        self.ur3e = self.proxies["ur3e"]
        self.dosing = self.proxies["dosing_device"]
        self.hotplate = self.proxies["hotplate"]
        self.vial = self.proxies["vial_1"]
        # Script-side bookkeeping (what a careful researcher would know).
        self.door_open = False
        self.holding = False
        self.vial_at = "grid_a1"  # "grid_a1" | "dosing_interior" | "hotplate_top"
        self.arm_at = "home"
        self.vial_solid = 0.0
        self.stoppered = True
        self.hotplate_on = False

    # -- door cycles ---------------------------------------------------------

    @precondition(lambda self: not self.door_open and self.arm_at != "dosing_interior")
    @rule()
    def open_door(self):
        self.dosing.open_door()
        self.door_open = True

    @precondition(
        lambda self: self.door_open
        and self.arm_at != "dosing_interior"
        and not self.dosing_running()
    )
    @rule()
    def close_door(self):
        self.dosing.close_door()
        self.door_open = False

    def dosing_running(self):
        return bool(self.deck.devices["dosing_device"].active)

    # -- arm motion -------------------------------------------------------------

    @rule()
    def go_home(self):
        self.ur3e.go_to_home_pose()
        self.arm_at = "home"

    @precondition(lambda self: self.arm_at != "dosing_interior")
    @rule()
    def stage_at_grid(self):
        self.ur3e.move_to_location("grid_a1_safe")
        self.arm_at = "grid_a1_safe"

    @precondition(lambda self: self.arm_at != "dosing_interior")
    @rule()
    def stage_at_hotplate(self):
        self.ur3e.move_to_location("hotplate_safe")
        self.arm_at = "hotplate_safe"

    # -- vial ferrying --------------------------------------------------------------

    @precondition(
        lambda self: not self.holding and self.vial_at == "grid_a1"
        and self.arm_at == "grid_a1_safe"
    )
    @rule()
    def pick_from_grid(self):
        self.ur3e.pick_up_vial("grid_a1")
        self.ur3e.move_to_location("grid_a1_safe")
        self.holding = True
        self.vial_at = "held"

    @precondition(lambda self: self.holding and self.arm_at == "grid_a1_safe")
    @rule()
    def place_on_grid(self):
        self.ur3e.place_vial("grid_a1")
        self.ur3e.move_to_location("grid_a1_safe")
        self.holding = False
        self.vial_at = "grid_a1"

    @precondition(
        lambda self: self.holding and self.door_open and self.arm_at != "dosing_interior"
    )
    @rule()
    def place_in_dosing(self):
        self.ur3e.move_to_location("dosing_approach")
        self.ur3e.place_vial("dosing_interior")
        self.ur3e.move_to_location("dosing_approach")
        self.arm_at = "dosing_approach"
        self.holding = False
        self.vial_at = "dosing_interior"

    @precondition(
        lambda self: not self.holding
        and self.vial_at == "dosing_interior"
        and self.door_open
    )
    @rule()
    def pick_from_dosing(self):
        self.ur3e.move_to_location("dosing_approach")
        self.ur3e.pick_up_vial("dosing_interior")
        self.ur3e.move_to_location("dosing_approach")
        self.arm_at = "dosing_approach"
        self.holding = True
        self.vial_at = "held"

    @precondition(
        lambda self: self.holding and self.arm_at == "hotplate_safe" and not self.hotplate_on
    )
    @rule()
    def place_on_hotplate(self):
        self.ur3e.place_vial("hotplate_top")
        self.ur3e.move_to_location("hotplate_safe")
        self.holding = False
        self.vial_at = "hotplate_top"

    @precondition(
        lambda self: not self.holding
        and self.vial_at == "hotplate_top"
        and not self.hotplate_on
        and self.arm_at == "hotplate_safe"
    )
    @rule()
    def pick_from_hotplate(self):
        self.ur3e.pick_up_vial("hotplate_top")
        self.ur3e.move_to_location("hotplate_safe")
        self.holding = True
        self.vial_at = "held"

    # -- stopper ---------------------------------------------------------------------

    @precondition(lambda self: self.stoppered and self.vial_at == "grid_a1")
    @rule()
    def decap(self):
        self.vial.decap_vial()
        self.stoppered = False

    @precondition(lambda self: not self.stoppered and self.vial_at == "grid_a1")
    @rule()
    def cap(self):
        self.vial.cap_vial()
        self.stoppered = True

    # -- dosing -----------------------------------------------------------------------

    @precondition(
        lambda self: self.vial_at == "dosing_interior"
        and not self.door_open  # closed for dosing (G9)
        and not self.stoppered  # open vial (G7)
        and self.vial_solid <= 4.0  # capacity headroom (G8)
    )
    @rule()
    def dose_solid(self):
        self.dosing.dose_solid(3.0)
        self.dosing.stop_action()
        self.vial_solid += 3.0

    # -- heating -----------------------------------------------------------------------

    @precondition(
        lambda self: self.vial_at == "hotplate_top" and self.vial_solid > 0
        and not self.hotplate_on
    )
    @rule()
    def heat(self):
        self.hotplate.stir_solution(60.0)
        self.hotplate_on = True

    @precondition(lambda self: self.hotplate_on)
    @rule()
    def stop_heat(self):
        self.hotplate.stop_action()
        self.hotplate_on = False

    # -- invariants ----------------------------------------------------------------------

    @invariant()
    def no_false_positives(self):
        assert self.rabit.alert_count == 0, [str(a) for a in self.rabit.alerts]

    @invariant()
    def no_physical_damage(self):
        assert self.deck.world.damage_log == ()

    @invariant()
    def belief_matches_ground_truth(self):
        believed = self.rabit.state.get("container_at", "vial_1")
        actual = self.deck.vials["vial_1"].resting_at
        assert believed == actual


LegalOperationMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=20, deadline=None
)
TestLegalOperations = LegalOperationMachine.TestCase


# ---------------------------------------------------------------------------
# Rule-verdict cache parity: cached and uncached monitors are observationally
# identical.
# ---------------------------------------------------------------------------

#: Command palette for the parity fuzz: a deliberate mix of legal moves and
#: rule-violating ones (dosing with the door open, double-picks, ferrying
#: to an occupied slot...), each applied blindly regardless of prior state.
_PARITY_COMMANDS = [
    ("open_door", lambda p: p["dosing_device"].open_door()),
    ("close_door", lambda p: p["dosing_device"].close_door()),
    ("go_home", lambda p: p["ur3e"].go_to_home_pose()),
    ("stage_grid", lambda p: p["ur3e"].move_to_location("grid_a1_safe")),
    ("stage_hotplate", lambda p: p["ur3e"].move_to_location("hotplate_safe")),
    ("stage_dosing", lambda p: p["ur3e"].move_to_location("dosing_approach")),
    ("pick_grid", lambda p: p["ur3e"].pick_up_vial("grid_a1")),
    ("place_grid", lambda p: p["ur3e"].place_vial("grid_a1")),
    ("pick_dosing", lambda p: p["ur3e"].pick_up_vial("dosing_interior")),
    ("place_dosing", lambda p: p["ur3e"].place_vial("dosing_interior")),
    ("pick_hotplate", lambda p: p["ur3e"].pick_up_vial("hotplate_top")),
    ("place_hotplate", lambda p: p["ur3e"].place_vial("hotplate_top")),
    ("dose", lambda p: p["dosing_device"].dose_solid(3.0)),
    ("stop_dosing", lambda p: p["dosing_device"].stop_action()),
    ("heat", lambda p: p["hotplate"].stir_solution(60.0)),
    ("stop_heat", lambda p: p["hotplate"].stop_action()),
    ("cap", lambda p: p["vial_1"].cap_vial()),
    ("decap", lambda p: p["vial_1"].decap_vial()),
]


def _fresh_monitor(cache_size):
    """A Hein deck with a fail-safe (non-stopping) RABIT wired on."""
    deck = build_hein_deck()
    options = RabitOptions.modified(
        preemptive_stop=False, rule_cache_size=cache_size
    )
    rabit, proxies, _ = make_hein_rabit(deck, options=options)
    return rabit, proxies


def _alert_trace(rabit):
    return [
        (a.kind, a.rule_id, a.message, a.command) for a in rabit.alerts
    ]


class TestRuleCacheParity:
    """The memoized rulebase path may never change observable behaviour."""

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.sampled_from(_PARITY_COMMANDS), min_size=1, max_size=30
        )
    )
    def test_cached_and_uncached_monitors_agree(self, commands):
        cached, cached_proxies = _fresh_monitor(cache_size=256)
        plain, plain_proxies = _fresh_monitor(cache_size=0)
        assert cached.rule_cache is not None
        assert plain.rule_cache is None

        for name, run in commands:
            run(cached_proxies)
            run(plain_proxies)
            # Alerts must match *after every command*, not just at the
            # end — a stale verdict would fire (or suppress) an alert at
            # the wrong step even if the final tallies coincided.
            assert _alert_trace(cached) == _alert_trace(plain), name

        # And the two monitors must have reached the same belief state.
        assert cached.state.fingerprint() == plain.state.fingerprint()

    def test_repeated_commands_actually_hit_the_cache(self):
        rabit, proxies = _fresh_monitor(cache_size=256)
        for _ in range(5):
            proxies["ur3e"].go_to_home_pose()  # identical (call, state) key
        stats = rabit.rule_cache.stats()
        assert stats["hits"] >= 3
        assert rabit.rule_cache.hit_rate > 0.0

    def test_rulebase_mutation_invalidates_cached_verdicts(self):
        from repro.core.actions import ActionLabel
        from repro.core.rulebase import Rule, RuleScope

        rabit, proxies = _fresh_monitor(cache_size=256)
        proxies["ur3e"].go_to_home_pose()
        assert rabit.alert_count == 0
        rabit.rulebase.add(
            Rule(
                rule_id="T1",
                scope=RuleScope.GENERAL,
                description="no homing (test)",
                labels=frozenset({ActionLabel.GO_HOME}),
                check=lambda ctx: "homing forbidden",
            )
        )
        proxies["ur3e"].go_to_home_pose()
        assert rabit.alert_count == 1, [str(a) for a in rabit.alerts]
