"""Recording must be free: no verdict, outcome, or latency figure moves.

The recorder's contract mirrors the observability layer's: default off
(one attribute read per instrumentation site), and when on it observes
without perturbing — it never touches the virtual clock and never
changes a rule verdict.  This suite runs identical workloads with
recording off and on and compares full canonical serializations, then
covers the fault-engine auto-dump hooks end to end (a failed mutant and
a paper-mismatched campaign outcome each leave a replayable trace).
"""

import dataclasses

from repro.analysis.latency import measure_workflow_latency
from repro.faults.campaign import CAMPAIGN_BUGS, run_bug, run_campaign
from repro.faults.montecarlo import reference_line_ids, run_monte_carlo, score_mutant
from repro.trace import TRACE, RunTrace
from repro.trace.replay import replay_trace

BUG_H1 = next(bug for bug in CAMPAIGN_BUGS if bug.bug_id == "H1")


def _with_recording(fn):
    """Run *fn* with an active recording; returns (result, trace)."""
    assert TRACE.active is False
    TRACE.begin("differential", {})
    try:
        result = fn()
    finally:
        trace = TRACE.end({})
    return result, trace


def test_campaign_verdicts_unchanged_by_recording():
    baseline = run_bug(BUG_H1, "modified").as_dict()
    recorded, trace = _with_recording(lambda: run_bug(BUG_H1, "modified").as_dict())
    assert recorded == baseline
    assert len(trace.events) > 0  # the run really was recorded


def test_mutant_scores_unchanged_by_recording():
    line_ids = reference_line_ids()
    for index in range(3):
        baseline = score_mutant(index, 30, line_ids)
        recorded, _ = _with_recording(lambda i=index: score_mutant(i, 30, line_ids))
        assert dataclasses.asdict(recorded) == dataclasses.asdict(baseline)


def test_latency_figures_unchanged_by_recording():
    """The §II-C overhead table is identical with the recorder running —
    recording charges nothing to the virtual clock."""
    baseline = measure_workflow_latency()
    recorded, trace = _with_recording(measure_workflow_latency)
    assert set(recorded) == set(baseline)
    for name in baseline:
        assert recorded[name].canonical_bytes() == baseline[name].canonical_bytes()
    assert len(trace.events) > 0


def test_montecarlo_trace_dir_dumps_replayable_failures(tmp_path):
    """Seed 30's first six mutants include a known false negative; the
    sweep must leave its monitored leg as a replayable trace."""
    report = run_monte_carlo(samples=6, seed=30, trace_dir=str(tmp_path))
    failed = [
        o for o in report.outcomes
        if o.classification in ("false_negative", "false_positive")
    ]
    dumped = sorted(tmp_path.glob("mutant-s30-i*.trace.jsonl"))
    assert len(dumped) == len(failed) > 0
    recorded = RunTrace.read_jsonl(dumped[0])
    assert recorded.header["workload"] == "mutant"
    report = replay_trace(recorded)
    assert report.match, report.diff_text()


def test_campaign_trace_dir_dumps_paper_mismatches(tmp_path):
    """A deviation from the paper's expected detection auto-dumps the bug
    run (forced here by flipping one bug's expectation)."""
    contrarian = dataclasses.replace(BUG_H1, expected={"modified": False})
    result = run_campaign(
        configs=("modified",), bugs=(contrarian,), trace_dir=str(tmp_path)
    )
    assert len(result.mismatches()) == 1
    path = tmp_path / "bug-H1-modified.trace.jsonl"
    assert path.exists()
    report = replay_trace(RunTrace.read_jsonl(path))
    assert report.match, report.diff_text()
