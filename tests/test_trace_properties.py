"""Property suite: record → replay → re-record is a fixed point.

Hypothesis drives the recorder across randomized workload choices and
randomized fault mutants (each mutant is a distinct single-edit
workflow, so the sampled space covers deletions, reorderings, and
coordinate perturbations with and without alerts) and asserts the
subsystem's core invariant: recording is idempotent — a second
recording of the same workload, and a recording of a loaded trace's
workload, produce byte-identical ``canonical_bytes``.  A final case
pins the same property with observability enabled, where span ids are
part of the compared bytes.

Example counts are small on purpose: every example is one or more full
guarded workflow runs.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.trace import TRACE, RunTrace, record_workload
from repro.trace.replay import replay_trace

#: Workloads cheap enough to sample repeatedly (no Extended Simulator).
FAST_WORKLOADS = ["testbed", "multi_door", "centrifuge"]

RELAXED = settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _record_twice(name, params, obs=False):
    first = record_workload(name, params, obs=obs)
    second = record_workload(name, params, obs=obs)
    return first, second


@RELAXED
@given(name=st.sampled_from(FAST_WORKLOADS))
def test_rerecording_a_workload_is_byte_identical(name):
    first, second = _record_twice(name, {})
    assert first.canonical_bytes() == second.canonical_bytes()
    assert TRACE.active is False


@RELAXED
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    index=st.integers(min_value=0, max_value=7),
)
def test_random_mutant_round_trips(seed, index, tmp_path_factory):
    """Record a random fault mutant, persist, reload, replay, re-record."""
    params = {"seed": seed, "index": index}
    first = record_workload("mutant", params)

    path = tmp_path_factory.mktemp("traces") / "mutant.trace.jsonl"
    first.write_jsonl(path)
    loaded = RunTrace.read_jsonl(path)
    assert loaded.canonical_bytes() == first.canonical_bytes()

    report = replay_trace(loaded)
    assert report.match, report.diff_text()

    again = record_workload("mutant", params)
    assert again.canonical_bytes() == first.canonical_bytes()


@settings(max_examples=2, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(name=st.sampled_from(["testbed", "multi_door"]))
def test_round_trip_with_observability_enabled(name):
    """Span ids are inside the compared bytes, so determinism here proves
    the obs cross-links are reproducible, not just present."""
    first, second = _record_twice(name, {}, obs=True)
    assert first.canonical_bytes() == second.canonical_bytes()
    assert any(event["obs_span_id"] is not None for event in first.events)

    report = replay_trace(first)
    assert report.match, report.diff_text()


def test_obs_spans_carry_the_trace_id_back_link():
    """The cross-link runs both ways: recorded events name their span,
    and the spans of a recorded run are stamped with the trace id."""
    from repro.obs import OBS

    trace = record_workload("multi_door", obs=True)
    stamped = [
        span
        for span in OBS.collector.spans()
        if span.attributes.get("trace_id") == trace.trace_id
    ]
    assert len(stamped) == len(trace.events)
    recorded_ids = {event["obs_span_id"] for event in trace.events}
    assert {span.span_id for span in stamped} == recorded_ids
    OBS.reset()
