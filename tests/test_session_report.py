"""Tests for the session audit report."""

import pytest

from repro.analysis.session_report import render_session_report, summarize_session
from repro.core.errors import SafetyViolation
from repro.lab.hein import build_hein_deck, make_hein_rabit
from repro.lab.workflows import build_solubility_workflow, run_workflow


class TestCleanSession:
    @pytest.fixture(scope="class")
    def clean_run(self):
        deck = build_hein_deck()
        rabit, proxies, trace = make_hein_rabit(deck)
        run_workflow(build_solubility_workflow(proxies))
        return deck, rabit, trace

    def test_summary_numbers(self, clean_run):
        deck, rabit, trace = clean_run
        summary = summarize_session(trace, rabit.alerts, deck.world)
        assert summary.clean
        assert summary.commands == len(trace) > 0
        assert summary.vetoed == 0
        assert summary.virtual_duration > 0

    def test_report_says_clean(self, clean_run):
        deck, rabit, trace = clean_run
        report = render_session_report(trace, rabit.alerts, deck.world)
        assert "verdict:            CLEAN" in report
        assert "Alerts" not in report
        assert "Commands per device" in report
        assert "ur3e" in report


class TestDirtySession:
    @pytest.fixture(scope="class")
    def vetoed_run(self):
        deck = build_hein_deck()
        rabit, proxies, trace = make_hein_rabit(deck)
        try:
            proxies["ur3e"].move_to_location("dosing_interior")
        except SafetyViolation:
            pass
        return deck, rabit, trace

    def test_veto_counted(self, vetoed_run):
        deck, rabit, trace = vetoed_run
        summary = summarize_session(trace, rabit.alerts, deck.world)
        assert not summary.clean
        assert summary.vetoed == 1 and summary.alerts == 1
        assert summary.damage_events == 0  # preemptive stop

    def test_report_lists_alert_and_command(self, vetoed_run):
        deck, rabit, trace = vetoed_run
        report = render_session_report(trace, rabit.alerts, deck.world)
        assert "ATTENTION REQUIRED" in report
        assert "[G1]" in report
        assert "command: move_robot_inside" in report

    def test_damage_section_when_world_is_harmed(self):
        from repro.testbed.deck import build_testbed_deck, make_testbed_rabit

        deck = build_testbed_deck()
        rabit, proxies, trace = make_testbed_rabit(deck)
        # Door closed (G9 satisfied), no vial inside: on the testbed,
        # container tracking is unreliable so the dose is not vetoed —
        # but ground truth records the spill, and the report shows it.
        proxies["dosing_device"].run_action(delay=0, quantity=5)
        report = render_session_report(trace, rabit.alerts, deck.world)
        assert "Ground-truth damage" in report
        assert "solid_spill" in report


class TestEmptySession:
    def test_zero_commands(self):
        deck = build_hein_deck()
        rabit, proxies, trace = make_hein_rabit(deck)
        summary = summarize_session(trace, rabit.alerts, deck.world)
        assert summary.commands == 0 and summary.virtual_duration == 0.0
        report = render_session_report(trace, rabit.alerts, deck.world)
        assert "CLEAN" in report
