"""Differential suite: batched kinematics kernel vs the scalar reference.

The batched FK/Jacobian/IK paths are hot-path twins of the scalar
textbook recurrences, exactly as the batch collision engine twins the
scalar slab test.  This suite is the gate that makes the speedup safe:

- batch FK and joint-position stacks agree with the scalar loop to
  <= 1e-12 (in practice they are bit-identical — same float64 ops);
- the analytic position Jacobian matches central differences to <= 1e-6
  on every profile arm, prismatic joints included;
- IK convergence verdicts are identical between the analytic and
  numeric Jacobian modes, and between the batched multi-target solver
  and the sequential scalar loop, on every profile arm.
"""

import numpy as np
import pytest

from repro.geometry.transforms import rotation_z, translation
from repro.kinematics.dh import DHChain, DHLink
from repro.kinematics.ik import (
    analytic_position_jacobian,
    numeric_position_jacobian,
    solve_position_ik,
    solve_position_ik_batch,
)
from repro.kinematics.profiles import N9, NED2, UR3E, UR5E, VIPERX_300
from repro.kinematics.trajectory import plan_joint_trajectory

ALL_PROFILES = (UR3E, UR5E, VIPERX_300, NED2, N9)

FK_ATOL = 1e-12
JAC_ATOL = 1e-6


def _postures(profile, count, seed):
    rng = np.random.default_rng(seed)
    lo, hi = profile.limit_arrays()
    return rng.uniform(lo, hi, size=(count, profile.dof))


def _targets(profile, count, seed):
    """A mix of clearly reachable and clearly unreachable targets."""
    rng = np.random.default_rng(seed)
    r = profile.reach
    tgts = rng.uniform(-0.5 * r, 0.5 * r, size=(count, 3))
    tgts[:, 2] = np.abs(tgts[:, 2]) + 0.05
    tgts[3 * count // 4:] *= 8.0  # far outside every arm's envelope
    return tgts


class TestBatchForwardKinematics:
    @pytest.mark.parametrize("profile", ALL_PROFILES, ids=lambda p: p.name)
    def test_forward_batch_matches_scalar(self, profile):
        chain = profile.chain()
        Q = _postures(profile, 64, seed=11)
        poses = chain.forward_batch(Q)
        assert poses.shape == (64, 4, 4)
        for q, pose in zip(Q, poses):
            assert np.allclose(pose, chain.forward(q).matrix, atol=FK_ATOL, rtol=0.0)

    @pytest.mark.parametrize("profile", ALL_PROFILES, ids=lambda p: p.name)
    def test_joint_positions_batch_matches_scalar(self, profile):
        chain = profile.chain()
        Q = _postures(profile, 64, seed=13)
        stacks = chain.joint_positions_batch(Q)
        assert stacks.shape == (64, profile.dof + 1, 3)
        for q, stack in zip(Q, stacks):
            assert np.allclose(
                stack, np.array(chain.joint_positions(q)), atol=FK_ATOL, rtol=0.0
            )

    def test_batch_respects_base_transform(self):
        base = translation([0.4, -0.2, 0.1]) @ rotation_z(0.7)
        chain = UR3E.chain().with_base(base)
        Q = _postures(UR3E, 16, seed=17)
        poses = chain.forward_batch(Q)
        for q, pose in zip(Q, poses):
            assert np.allclose(pose, chain.forward(q).matrix, atol=FK_ATOL, rtol=0.0)

    def test_frames_batch_matches_scalar_frames(self):
        chain = N9.chain()  # exercises the prismatic branch
        Q = _postures(N9, 32, seed=19)
        frames = chain.frames_batch(Q)
        for q, stack in zip(Q, frames):
            assert np.allclose(stack, chain.frames(q), atol=FK_ATOL, rtol=0.0)

    def test_batch_rejects_bad_shapes(self):
        chain = UR3E.chain()
        with pytest.raises(ValueError, match="joint matrix"):
            chain.forward_batch(np.zeros((4, 5)))
        with pytest.raises(ValueError, match="joint matrix"):
            chain.joint_positions_batch(np.zeros(6))


class TestAnalyticJacobian:
    @pytest.mark.parametrize("profile", ALL_PROFILES, ids=lambda p: p.name)
    def test_matches_central_differences(self, profile):
        chain = profile.chain()
        for q in _postures(profile, 24, seed=23):
            analytic = analytic_position_jacobian(chain, q)
            numeric = numeric_position_jacobian(chain, q)
            assert np.allclose(analytic, numeric, atol=JAC_ATOL, rtol=0.0), (
                f"{profile.name}: analytic/numeric Jacobian mismatch at {q}"
            )

    def test_matches_under_base_transform(self):
        chain = NED2.chain().with_base(translation([0.2, 0.6, 0.0]) @ rotation_z(-1.1))
        for q in _postures(NED2, 12, seed=29):
            assert np.allclose(
                analytic_position_jacobian(chain, q),
                numeric_position_jacobian(chain, q),
                atol=JAC_ATOL,
                rtol=0.0,
            )

    def test_prismatic_column_is_axis(self):
        # A lone prismatic link's Jacobian column is its (base-frame) z axis.
        lift = DHChain([DHLink(a=0.0, alpha=0.0, d=0.1, prismatic=True)])
        jac = analytic_position_jacobian(lift, np.array([0.07]))
        assert np.allclose(jac[:, 0], [0.0, 0.0, 1.0], atol=FK_ATOL)


class TestIKVerdictParity:
    @pytest.mark.parametrize("profile", ALL_PROFILES, ids=lambda p: p.name)
    def test_analytic_and_numeric_modes_agree(self, profile):
        chain = profile.chain()
        for target in _targets(profile, 12, seed=31):
            analytic = solve_position_ik(
                chain, target, q0=profile.home_q,
                joint_limits=profile.joint_limits, jacobian="analytic",
            )
            numeric = solve_position_ik(
                chain, target, q0=profile.home_q,
                joint_limits=profile.joint_limits, jacobian="numeric",
            )
            assert analytic.converged == numeric.converged, (
                f"{profile.name}: verdict flipped for {target}"
            )
            if analytic.converged:
                # Both solutions place the tool within tolerance.
                for result in (analytic, numeric):
                    reached = chain.end_effector_position(result.q)
                    assert np.linalg.norm(reached - target) < 1e-4

    @pytest.mark.parametrize("profile", ALL_PROFILES, ids=lambda p: p.name)
    def test_batch_solver_matches_sequential(self, profile):
        chain = profile.chain()
        targets = _targets(profile, 16, seed=37)
        batch = solve_position_ik_batch(
            chain, targets, q0=profile.home_q, joint_limits=profile.joint_limits
        )
        assert len(batch) == len(targets)
        for target, b in zip(targets, batch):
            s = solve_position_ik(
                chain, target, q0=profile.home_q, joint_limits=profile.joint_limits
            )
            assert b.converged == s.converged
            assert b.iterations == s.iterations
            if b.converged:
                assert np.allclose(b.q, s.q, atol=1e-9, rtol=0.0)
            else:
                # Non-converged iterate paths at the workspace boundary can
                # amplify last-ulp differences; the residual, not the
                # posture, is the contract.
                assert b.error == pytest.approx(s.error, abs=1e-5)

    def test_batch_solver_broadcast_and_per_target_seeds(self):
        chain = UR3E.chain()
        targets = _targets(UR3E, 8, seed=41)
        seeds = np.tile(np.asarray(UR3E.home_q), (8, 1))
        shared = solve_position_ik_batch(chain, targets, q0=UR3E.home_q)
        rowwise = solve_position_ik_batch(chain, targets, q0=seeds)
        assert [r.converged for r in shared] == [r.converged for r in rowwise]
        assert [r.q for r in shared] == [r.q for r in rowwise]

    def test_batch_solver_empty_and_bad_shapes(self):
        chain = UR3E.chain()
        assert solve_position_ik_batch(chain, np.zeros((0, 3)), q0=UR3E.home_q) == []
        with pytest.raises(ValueError, match=r"\(T, 3\)"):
            solve_position_ik_batch(chain, np.zeros((3, 2)), q0=UR3E.home_q)
        with pytest.raises(ValueError, match="q0 must be"):
            solve_position_ik_batch(chain, np.zeros((3, 3)), q0=np.zeros((2, 6)))


class TestTrajectoryArrays:
    @pytest.mark.parametrize("profile", (UR3E, N9), ids=lambda p: p.name)
    def test_link_paths_array_matches_scalar(self, profile):
        traj = plan_joint_trajectory(profile.chain(), profile.home_q, profile.sleep_q)
        packed = traj.link_paths_array(25)
        scalar = traj.link_paths(25)
        assert packed.shape == (26, profile.dof + 1, 3)
        for row, frame in zip(packed, scalar):
            assert np.allclose(row, np.array(frame), atol=FK_ATOL, rtol=0.0)

    def test_end_effector_path_array_matches_scalar(self):
        traj = plan_joint_trajectory(UR5E.chain(), UR5E.home_q, UR5E.sleep_q)
        packed = traj.end_effector_path_array(30)
        scalar = traj.end_effector_path(30)
        assert packed.shape == (31, 3)
        for row, point in zip(packed, scalar):
            assert np.allclose(row, point, atol=FK_ATOL, rtol=0.0)
