"""The serve client's bounded-backoff retry decorator.

All timing runs against an injected fake sleep, so the tests pin the
exact deterministic delay schedule (doubling, capped, seeded jitter)
without ever waiting, and prove the policy's central safety property:
only connect/timeout transients are retried — anything else propagates
on the first attempt.
"""

import asyncio

import pytest

from repro.serve.retry import RetryPolicy, backoff_delays, retrying


def _collecting_sleep(record):
    async def fake_sleep(delay):
        record.append(delay)

    return fake_sleep


def run(coro):
    return asyncio.run(coro)


class Flaky:
    """Fails with *exc* the first *failures* calls, then succeeds."""

    def __init__(self, exc, failures):
        self.exc = exc
        self.failures = failures
        self.calls = 0

    async def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc
        return "ok"


def test_backoff_schedule_doubles_and_caps():
    policy = RetryPolicy(
        attempts=6, base_delay=0.1, max_delay=0.5, jitter=0.0, seed=0
    )
    assert backoff_delays(policy) == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])


def test_backoff_schedule_is_deterministic_per_seed():
    policy = RetryPolicy(attempts=5, jitter=0.25, seed=42)
    first = backoff_delays(policy)
    second = backoff_delays(policy)
    assert first == second
    # Jitter inflates each delay by at most the jitter amplitude.
    bare = backoff_delays(RetryPolicy(attempts=5, jitter=0.0, seed=42))
    for jittered, base in zip(first, bare):
        assert base <= jittered <= base * 1.25
    # A different seed decorrelates the schedule.
    assert backoff_delays(RetryPolicy(attempts=5, jitter=0.25, seed=43)) != first


def test_retries_transient_then_succeeds():
    slept = []
    policy = RetryPolicy(attempts=4, base_delay=0.05, jitter=0.0)
    fn = Flaky(ConnectionRefusedError("down"), failures=2)
    wrapped = retrying(policy, sleep=_collecting_sleep(slept))(fn)
    assert run(wrapped()) == "ok"
    assert fn.calls == 3
    assert slept == pytest.approx(backoff_delays(policy)[:2])


def test_timeout_is_transient_too():
    slept = []
    fn = Flaky(TimeoutError("slow"), failures=1)
    wrapped = retrying(RetryPolicy(jitter=0.0), sleep=_collecting_sleep(slept))(fn)
    assert run(wrapped()) == "ok"
    assert fn.calls == 2


def test_exhaustion_reraises_last_error():
    slept = []
    policy = RetryPolicy(attempts=3, base_delay=0.05, jitter=0.0)
    fn = Flaky(ConnectionResetError("gone"), failures=99)
    wrapped = retrying(policy, sleep=_collecting_sleep(slept))(fn)
    with pytest.raises(ConnectionResetError):
        run(wrapped())
    assert fn.calls == 3
    assert slept == pytest.approx(backoff_delays(policy))


def test_non_transient_errors_propagate_immediately():
    slept = []
    fn = Flaky(ValueError("a bug, not a transient"), failures=99)
    wrapped = retrying(RetryPolicy(), sleep=_collecting_sleep(slept))(fn)
    with pytest.raises(ValueError):
        run(wrapped())
    assert fn.calls == 1
    assert slept == []


def test_custom_retry_on_extends_the_transient_set():
    slept = []
    policy = RetryPolicy(retry_on=(FileNotFoundError,), jitter=0.0)
    fn = Flaky(FileNotFoundError("socket not there yet"), failures=1)
    wrapped = retrying(policy, sleep=_collecting_sleep(slept))(fn)
    assert run(wrapped()) == "ok"
    assert fn.calls == 2


def test_single_attempt_never_sleeps():
    slept = []
    fn = Flaky(ConnectionError("down"), failures=99)
    wrapped = retrying(
        RetryPolicy(attempts=1), sleep=_collecting_sleep(slept)
    )(fn)
    with pytest.raises(ConnectionError):
        run(wrapped())
    assert fn.calls == 1
    assert slept == []


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-0.1)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=-1.0)


# -- the client's transient error taxonomy -----------------------------------
#
# The service can vanish mid-session (worker crash, drain, deploy).  The
# client must surface that as a *distinct, retry-eligible* error — not a
# bare ConnectionResetError from the guts of asyncio, and never a
# generic ServeError the policy would refuse to retry.


def test_connection_lost_is_a_retry_eligible_serve_error():
    from repro.serve.client import (
        ServeConnectionLost,
        ServeError,
        ServeUnavailableError,
    )

    # Both transients subclass ConnectionError, so the stock policy's
    # transient set covers them with no policy changes.
    assert issubclass(ServeConnectionLost, ServeError)
    assert issubclass(ServeConnectionLost, ConnectionError)
    assert issubclass(ServeUnavailableError, ServeError)
    assert issubclass(ServeUnavailableError, ConnectionError)

    slept = []
    fn = Flaky(ServeConnectionLost("server went away mid-request"), failures=2)
    wrapped = retrying(
        RetryPolicy(attempts=4, jitter=0.0), sleep=_collecting_sleep(slept)
    )(fn)
    assert run(wrapped()) == "ok"
    assert fn.calls == 3

    fn = Flaky(
        ServeUnavailableError("session limit reached", code="session-limit"),
        failures=1,
    )
    wrapped = retrying(RetryPolicy(jitter=0.0), sleep=_collecting_sleep(slept))(fn)
    assert run(wrapped()) == "ok"
    assert fn.calls == 2


def test_server_closing_mid_session_raises_connection_lost():
    from repro.serve.client import ServeClient, ServeConnectionLost

    async def scenario():
        async def slam_after_open(reader, writer):
            # Answer the open, then hang up without warning — the shape
            # of a worker dying under a live session.
            await reader.readline()
            writer.write(b'{"ok":true,"session":1}\n')
            await writer.drain()
            await reader.readline()
            writer.close()

        server = await asyncio.start_server(slam_after_open, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        try:
            client = await ServeClient.open_tcp("127.0.0.1", port)
            assert await client.open_session(deck="hein") == 1
            with pytest.raises(ServeConnectionLost) as excinfo:
                await client.request({"op": "command", "device": "ur3e"})
            # The distinct type is what makes it retry-eligible; the
            # message says what happened rather than leaking asyncio
            # internals.
            assert isinstance(excinfo.value, ConnectionError)
            assert "connection" in str(excinfo.value).lower()
        finally:
            server.close()
            await server.wait_closed()

    run(scenario())


def test_unavailable_refusal_carries_its_code():
    from repro.serve.client import ServeClient, ServeUnavailableError

    async def scenario():
        async def refuse(reader, writer):
            await reader.readline()
            writer.write(
                b'{"ok":false,"error":"worker 1 unavailable; retry shortly",'
                b'"code":"worker-unavailable","retryable":true}\n'
            )
            await writer.drain()
            await reader.readline()
            writer.close()

        server = await asyncio.start_server(refuse, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        try:
            client = await ServeClient.open_tcp("127.0.0.1", port)
            with pytest.raises(ServeUnavailableError) as excinfo:
                await client.open_session(deck="hein")
            assert excinfo.value.code == "worker-unavailable"
            await client.close()
        finally:
            server.close()
            await server.wait_closed()

    run(scenario())
