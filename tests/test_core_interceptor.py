"""Tests for the RATracer-substitute interception layer."""

import pytest

from repro.core.actions import ActionLabel
from repro.core.clock import VirtualClock
from repro.core.errors import SafetyViolation
from repro.core.interceptor import BASELINE_DURATION, instrument
from repro.lab.hein import build_hein_deck, make_hein_rabit


@pytest.fixture()
def wired():
    deck = build_hein_deck()
    rabit, proxies, trace = make_hein_rabit(deck)
    return deck, rabit, proxies, trace


class TestResolution:
    def test_move_resolves_location_and_target(self, wired):
        deck, rabit, proxies, trace = wired
        proxies["ur3e"].move_to_location("grid_a1_safe")
        record = trace[-1]
        assert record.label is ActionLabel.MOVE_ROBOT
        assert record.location == "grid_a1_safe"
        assert record.device == "ur3e"

    def test_interior_move_resolves_to_move_inside(self, wired):
        deck, rabit, proxies, trace = wired
        proxies["dosing_device"].open_door()
        proxies["ur3e"].move_to_location("dosing_approach")
        proxies["ur3e"].move_to_location("dosing_interior")
        assert trace[-1].label is ActionLabel.MOVE_ROBOT_INSIDE

    def test_raw_coordinates_resolve_to_move(self, wired):
        deck, rabit, proxies, trace = wired
        proxies["ur3e"].move_to_location([0.3, 0.1, 0.2])
        record = trace[-1]
        assert record.label is ActionLabel.MOVE_ROBOT
        assert record.location is None

    def test_pick_place_labels(self, wired):
        deck, rabit, proxies, trace = wired
        ur3e = proxies["ur3e"]
        ur3e.move_to_location("grid_a1_safe")
        ur3e.pick_up_vial("grid_a1")
        assert trace[-1].label is ActionLabel.PICK_OBJECT
        ur3e.move_to_location("grid_a1_safe")
        ur3e.place_vial("grid_a1")
        assert trace[-1].label is ActionLabel.PLACE_OBJECT

    def test_door_and_dosing_labels(self, wired):
        deck, rabit, proxies, trace = wired
        dosing = proxies["dosing_device"]
        dosing.set_door("state", "open")
        assert trace[-1].label is ActionLabel.OPEN_DOOR
        dosing.set_door("state", "closed")
        assert trace[-1].label is ActionLabel.CLOSE_DOOR

    def test_vial_commands(self, wired):
        deck, rabit, proxies, trace = wired
        proxies["vial_1"].decap_vial()
        assert trace[-1].label is ActionLabel.DECAP
        proxies["vial_1"].cap_vial()
        assert trace[-1].label is ActionLabel.CAP

    def test_action_device_value_extraction(self, wired):
        deck, rabit, proxies, trace = wired
        with pytest.raises(SafetyViolation):
            # G5 fires (nothing loaded), which proves the value and label
            # were resolved and checked before execution.
            proxies["hotplate"].stir_solution(60.0)
        assert trace[-1].label is ActionLabel.START_ACTION
        assert trace[-1].alert is not None

    def test_rotor_direction(self, wired):
        deck, rabit, proxies, trace = wired
        proxies["centrifuge"].rotate_rotor("E")
        assert trace[-1].label is ActionLabel.ROTATE_ROTOR
        assert rabit.state.get("red_dot", "centrifuge") == "E"


class TestPassthrough:
    def test_status_is_untraced(self, wired):
        deck, rabit, proxies, trace = wired
        before = len(trace)
        proxies["ur3e"].status()
        assert len(trace) == before

    def test_attributes_pass_through(self, wired):
        deck, rabit, proxies, trace = wired
        assert proxies["ur3e"].name == "ur3e"
        assert proxies["ur3e"].wrapped is deck.devices["ur3e"]
        assert proxies["dosing_device"].max_dose_mg == 10.0


class TestTraceRecords:
    def test_alerted_command_is_marked(self, wired):
        deck, rabit, proxies, trace = wired
        with pytest.raises(SafetyViolation):
            proxies["ur3e"].move_to_location("dosing_interior")
        record = trace[-1]
        assert record.alert is not None and record.alert.rule_id == "G1"
        assert "!!" in str(record)

    def test_trace_times_monotonic(self, wired):
        deck, rabit, proxies, trace = wired
        proxies["dosing_device"].open_door()
        proxies["ur3e"].move_to_location("grid_a1_safe")
        proxies["dosing_device"].close_door()
        times = [r.time for r in trace]
        assert times == sorted(times)


class TestBaselineCharging:
    def test_unmonitored_proxies_charge_experiment_time(self):
        deck = build_hein_deck()
        clock = VirtualClock()
        proxies, trace = instrument(deck.devices, rabit=None, clock=clock)
        proxies["dosing_device"].open_door()
        expected = (
            deck.devices["dosing_device"].connection.command_latency
            + BASELINE_DURATION[ActionLabel.OPEN_DOOR]
        )
        assert clock.spent("experiment") == pytest.approx(expected)

    def test_every_label_has_a_baseline_duration(self):
        for label in ActionLabel:
            assert label in BASELINE_DURATION


class TestMultipleCommandsPerAction:
    """§V-C: "there is a possibility that multiple commands could be used
    to execute a specific action ... RABIT currently allows only one
    command per action."  The interceptor resolves any number of device
    methods onto one action label, so the limitation does not apply here.
    """

    def test_move_commands_share_one_action(self, wired):
        deck, rabit, proxies, trace = wired
        proxies["ur3e"].move_to_location("grid_a1_safe")
        proxies["ur3e"].move_pose("grid_a1_safe")
        assert trace[-1].label is trace[-2].label is ActionLabel.MOVE_ROBOT

    def test_dosing_commands_share_one_action(self, wired):
        deck, rabit, proxies, trace = wired
        from repro.core.errors import SafetyViolation

        # Both dosing entry points hit the same preconditions: with the
        # door open, each is vetoed by the same rule.
        proxies["dosing_device"].open_door()
        for method in ("run_action", "dose_solid"):
            with pytest.raises(SafetyViolation) as excinfo:
                if method == "run_action":
                    proxies["dosing_device"].run_action(delay=0, quantity=2)
                else:
                    proxies["dosing_device"].dose_solid(2)
            assert excinfo.value.alert.rule_id == "G9"
            assert trace[-1].label is ActionLabel.START_DOSING
