"""Tests for the §V-C non-cuboid shape extension."""

import numpy as np
import pytest

from repro.geometry.richshapes import (
    CompositeShape,
    Hemisphere,
    VerticalCylinder,
    shape_from_spec,
)
from repro.geometry.shapes import Cuboid


class TestHemisphere:
    DOME = Hemisphere((0.0, 0.0, 0.1), radius=0.2, name="dome")

    def test_contains_apex_and_base_center(self):
        assert self.DOME.contains([0, 0, 0.3])
        assert self.DOME.contains([0, 0, 0.1])

    def test_rejects_below_base(self):
        assert not self.DOME.contains([0, 0, 0.05])

    def test_rejects_outside_radius(self):
        assert not self.DOME.contains([0.25, 0, 0.12])

    def test_corner_of_bounding_cuboid_is_outside_dome(self):
        # The whole point: the dome frees the cuboid's shoulders.
        box = self.DOME.bounding_cuboid()
        shoulder = [box.hi[0] - 0.01, box.hi[1] - 0.01, box.hi[2] - 0.01]
        assert box.contains(shoulder)
        assert not self.DOME.contains(shoulder)

    def test_tolerance(self):
        assert self.DOME.contains([0.21, 0, 0.1], tol=0.02)

    def test_positive_radius_required(self):
        with pytest.raises(ValueError):
            Hemisphere((0, 0, 0), radius=0.0)


class TestVerticalCylinder:
    DRUM = VerticalCylinder((0.1, 0.1), (0.0, 0.3), radius=0.1, name="drum")

    def test_contains_axis(self):
        assert self.DRUM.contains([0.1, 0.1, 0.15])

    def test_rejects_above_and_below(self):
        assert not self.DRUM.contains([0.1, 0.1, 0.35])
        assert not self.DRUM.contains([0.1, 0.1, -0.05])

    def test_rejects_outside_radius(self):
        assert not self.DRUM.contains([0.25, 0.1, 0.15])

    def test_bounding_cuboid(self):
        box = self.DRUM.bounding_cuboid()
        assert np.allclose(box.lo, [0.0, 0.0, 0.0])
        assert np.allclose(box.hi, [0.2, 0.2, 0.3])

    def test_inverted_z_rejected(self):
        with pytest.raises(ValueError, match="inverted"):
            VerticalCylinder((0, 0), (0.3, 0.1), radius=0.1)


class TestComposite:
    # Participant P's thermoshaker: a body with a bump on top.
    BODY = Cuboid((0, 0, 0), (0.2, 0.2, 0.1), name="body")
    BUMP = Hemisphere((0.1, 0.1, 0.1), radius=0.05, name="bump")
    SHAKER = CompositeShape((BODY, BUMP), name="thermoshaker")

    def test_contains_either_part(self):
        assert self.SHAKER.contains([0.05, 0.05, 0.05])  # body
        assert self.SHAKER.contains([0.1, 0.1, 0.13])  # bump

    def test_rejects_beside_bump_above_body(self):
        # Above the body but outside the bump: free space the single
        # bounding cuboid would have kept out.
        point = [0.02, 0.02, 0.12]
        assert not self.SHAKER.contains(point)
        assert self.SHAKER.bounding_cuboid().contains(point)

    def test_needs_parts(self):
        with pytest.raises(ValueError, match="at least one part"):
            CompositeShape((), name="empty")


class TestShapeFromSpec:
    def test_cuboid_default(self):
        shape = shape_from_spec({"min": [0, 0, 0], "max": [1, 1, 1]}, name="box")
        assert isinstance(shape, Cuboid) and shape.name == "box"

    def test_hemisphere(self):
        shape = shape_from_spec(
            {"type": "hemisphere", "center": [0, 0, 0.1], "radius": 0.2}, name="dome"
        )
        assert isinstance(shape, Hemisphere)

    def test_cylinder(self):
        shape = shape_from_spec(
            {"type": "cylinder", "center_xy": [0, 0], "z_range": [0, 0.3], "radius": 0.1},
            name="drum",
        )
        assert isinstance(shape, VerticalCylinder)

    def test_composite(self):
        shape = shape_from_spec(
            {
                "type": "composite",
                "parts": [
                    {"min": [0, 0, 0], "max": [1, 1, 1]},
                    {"type": "hemisphere", "center": [0.5, 0.5, 1.0], "radius": 0.2},
                ],
            },
            name="bumpy",
        )
        assert isinstance(shape, CompositeShape) and len(shape.parts) == 2

    def test_unknown_type(self):
        with pytest.raises(ValueError, match="unknown shape type"):
            shape_from_spec({"type": "torus"}, name="t")


class TestConfigIntegration:
    def test_refined_shape_loads_through_config(self):
        from repro.core.config import build_model
        from repro.lab.hein import build_hein_deck

        config = build_hein_deck().config
        # Refine the centrifuge into P's hemisphere-on-drum description.
        for obs in config["obstacles"]:
            if obs["name"] == "centrifuge":
                obs["frames"]["ur3e"] = {
                    "type": "composite",
                    "parts": [
                        {
                            "type": "cylinder",
                            "center_xy": [0.0, -0.38],
                            "z_range": [0.0, 0.15],
                            "radius": 0.10,
                        },
                        {
                            "type": "hemisphere",
                            "center": [0.0, -0.38, 0.15],
                            "radius": 0.10,
                        },
                    ],
                }
        model = build_model(config)
        shapes = {c.name: c for c in model.obstacles_for_frame("ur3e")}
        centrifuge = shapes["centrifuge"]
        assert centrifuge.contains([0.0, -0.38, 0.2])  # dome
        # The old cuboid's top corner is now free space.
        assert not centrifuge.contains([0.09, -0.29, 0.24])

    def test_invalid_shape_spec_rejected(self):
        from repro.core.config import validate_config
        from repro.lab.hein import build_hein_deck

        config = build_hein_deck().config
        config["obstacles"][1]["frames"]["ur3e"] = {"type": "hemisphere", "radius": -1}
        issues = [i for i in validate_config(config) if i.severity == "error"]
        assert any("invalid shape spec" in i.message for i in issues)
