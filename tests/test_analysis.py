"""Tests for metrics, report formatting, and the latency experiment."""

import pytest

from repro.analysis.latency import measure_workflow_latency
from repro.analysis.metrics import campaign_stats, false_positive_check, severity_rows
from repro.analysis.report import format_severity_table, format_table


class TestMetrics:
    def test_campaign_stats(self, campaign_result):
        stats = campaign_stats(campaign_result, "modified")
        assert stats.total == 16 and stats.detected == 12
        assert stats.percent == 75

    def test_severity_rows_ordered(self, campaign_result):
        rows = severity_rows(campaign_result, "modified")
        assert [r[0] for r in rows] == ["low", "medium_low", "medium_high", "high"]
        assert rows == [
            ("low", 3, 1),
            ("medium_low", 1, 1),
            ("medium_high", 6, 4),
            ("high", 6, 6),
        ]

    def test_false_positive_check(self):
        assert false_positive_check([], workflow_completed=True)
        assert not false_positive_check(["alert"], workflow_completed=True)
        assert not false_positive_check([], workflow_completed=False)


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [["x", 1], ["yyyy", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert len(lines) == 5

    def test_severity_table_totals(self, campaign_result):
        text = format_severity_table(severity_rows(campaign_result, "modified"))
        assert "Table V" in text
        assert "16" in text and "12" in text
        assert "breaking expensive equipment" in text


class TestLatencyExperiment:
    @pytest.fixture(scope="class")
    def reports(self):
        return measure_workflow_latency()

    def test_all_four_configurations_present(self, reports):
        assert set(reports) == {"unmonitored", "rabit", "rabit+es", "rabit+es-headless"}

    def test_unmonitored_has_no_rabit_time(self, reports):
        assert reports["unmonitored"].rabit_seconds == 0.0

    def test_rabit_overhead_matches_paper(self, reports):
        # §II-C: "approximately 0.03 s overhead (1.5 %)".
        report = reports["rabit"]
        assert 0.02 <= report.overhead_per_command <= 0.04
        assert 1.0 <= report.overhead_percent <= 2.5

    def test_es_gui_overhead_matches_paper(self, reports):
        # §II-C: "approximately 2 s overhead (112 %)".
        report = reports["rabit+es"]
        assert 1.8 <= report.overhead_per_command <= 2.2
        assert 95.0 <= report.overhead_percent <= 130.0

    def test_bypassing_gui_restores_cheap_monitoring(self, reports):
        # The deployment plan: "bypass the GUI entirely".
        assert reports["rabit+es-headless"].overhead_percent < 3.0

    def test_same_command_count_across_configurations(self, reports):
        counts = {r.commands for r in reports.values()}
        assert len(counts) == 1

    def test_deterministic(self):
        a = measure_workflow_latency()["rabit"]
        b = measure_workflow_latency()["rabit"]
        assert a.rabit_seconds == pytest.approx(b.rabit_seconds)


class TestFetchStateScaling:
    """The monitor's per-command overhead is dominated by FetchState's
    one-status-round-trip-per-device; it must scale linearly with deck
    size (the §II-C cost model)."""

    @staticmethod
    def _overhead_for(vial_count):
        from repro.core.clock import VirtualClock
        from repro.lab.hein import build_hein_deck, make_hein_rabit

        names = tuple(f"vial_{i + 1}" for i in range(vial_count))
        deck = build_hein_deck(vial_names=names)
        clock = VirtualClock()
        rabit, proxies, _ = make_hein_rabit(deck, clock=clock)
        baseline = clock.spent("rabit_fetch_state")
        proxies["dosing_device"].open_door()
        return clock.spent("rabit_fetch_state") - baseline, len(deck.devices)

    def test_overhead_grows_linearly_with_device_count(self):
        small, n_small = self._overhead_for(2)
        large, n_large = self._overhead_for(8)
        assert n_large == n_small + 6
        # 3 ms per extra device, exactly.
        assert large - small == pytest.approx(0.003 * 6)
