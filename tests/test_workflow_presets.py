"""Differential suite: every legacy hardcoded workflow vs. its registry
preset, pinned **byte-identical** at the journal level.

Both legs render through :func:`repro.workflow.journal.run_journal` and
compare via canonical bytes, so agreement means the same commands with
the same positional args, the same virtual-clock timestamps, the same
action labels and resolved locations, the same alerts, and the same
executed line/node ids — not merely "similar outcomes".
"""

import pytest

from repro.core.monitor import RabitOptions
from repro.faults.mutation import DeleteLine, InsertAfter, apply_mutations
from repro.lab.workflows import ScriptLine, run_workflow
from repro.workflow import (
    PRESETS,
    build_preset,
    journal_bytes,
    preset_matrix,
    run_journal,
    run_preset,
)


def _legacy_bytes(trace, result) -> bytes:
    return journal_bytes(
        run_journal(
            trace,
            result.executed_lines,
            result.completed,
            result.alert,
            result.device_error,
        )
    )


def _preset_bytes(name, params=None):
    dag, ctx, result = run_preset(name, params)
    data = journal_bytes(
        run_journal(
            ctx.trace,
            result.executed_nodes,
            result.completed,
            result.alert,
            result.device_error,
            result.recovered,
        )
    )
    return data, result


# ---------------------------------------------------------------------------
# Hein production workflows
# ---------------------------------------------------------------------------


def _hein_legacy(build_lines, **kwargs):
    from repro.lab.hein import build_hein_deck, make_hein_rabit

    deck = build_hein_deck()
    _, proxies, trace = make_hein_rabit(deck, options=RabitOptions.modified())
    result = run_workflow(build_lines(proxies, **kwargs))
    return _legacy_bytes(trace, result), result


class TestHeinPresets:
    def test_solubility_defaults(self):
        from repro.lab.workflows import build_solubility_workflow

        legacy, legacy_res = _hein_legacy(build_solubility_workflow)
        mine, res = _preset_bytes("solubility")
        assert legacy_res.completed and res.completed
        assert mine == legacy

    def test_solubility_parameterized(self):
        from repro.lab.workflows import build_solubility_workflow

        params = {
            "amount_mg": 3.0,
            "initial_solvent_ml": 2.0,
            "temperature": 40.0,
            "dissolution_rounds": 3,
            "centrifuge_rpm": 2000.0,
        }
        legacy, _ = _hein_legacy(build_solubility_workflow, **params)
        mine, res = _preset_bytes("solubility", params)
        assert res.completed
        assert mine == legacy

    def test_crystallization_defaults(self):
        from repro.lab.workflows import build_crystallization_workflow

        legacy, _ = _hein_legacy(build_crystallization_workflow)
        mine, res = _preset_bytes("crystallization")
        assert res.completed
        assert mine == legacy

    def test_crystallization_parameterized(self):
        from repro.lab.workflows import build_crystallization_workflow

        params = {"amount_mg": 2.0, "solvent_ml": 2.0, "shake_rpm": 600.0}
        legacy, _ = _hein_legacy(build_crystallization_workflow, **params)
        mine, _ = _preset_bytes("crystallization", params)
        assert mine == legacy


# ---------------------------------------------------------------------------
# Berlinguette spray coating
# ---------------------------------------------------------------------------


class TestSprayCoatingPreset:
    @pytest.mark.parametrize("solvent_only", [False, True])
    def test_spray_coating(self, solvent_only):
        from repro.lab.berlinguette import (
            build_berlinguette_deck,
            build_spray_coating_workflow,
            make_berlinguette_rabit,
        )

        deck = build_berlinguette_deck()
        _, proxies, trace = make_berlinguette_rabit(
            deck, options=RabitOptions.modified()
        )
        result = run_workflow(
            build_spray_coating_workflow(proxies, solvent_only=solvent_only)
        )
        legacy = _legacy_bytes(trace, result)
        mine, res = _preset_bytes("spray_coating", {"solvent_only": solvent_only})
        assert res.completed == result.completed
        assert mine == legacy


# ---------------------------------------------------------------------------
# Testbed Fig. 5 and the Bug A/B/C variants (DAG surgery vs. apply_mutations)
# ---------------------------------------------------------------------------


def _testbed_legacy(mutations_for=None):
    from repro.lab.workflows import build_testbed_workflow
    from repro.testbed.deck import build_testbed_deck, make_testbed_rabit

    deck = build_testbed_deck(noise_sigma=0.003)
    _, proxies, trace = make_testbed_rabit(deck, options=RabitOptions.modified())
    lines = build_testbed_workflow(proxies)
    if mutations_for is not None:
        lines = apply_mutations(lines, deck.world, mutations_for(proxies))
    result = run_workflow(lines)
    return _legacy_bytes(trace, result), result


class TestTestbedPresets:
    def test_fig5_safe(self):
        legacy, legacy_res = _testbed_legacy()
        mine, res = _preset_bytes("testbed_fig5")
        assert legacy_res.completed and res.completed
        assert mine == legacy

    def test_bug_a_door_deleted(self):
        """Bug A (campaign H1): detected — both legs stop on the same alert."""
        legacy, legacy_res = _testbed_legacy(
            lambda px: [DeleteLine("open_door_after_dose")]
        )
        mine, res = _preset_bytes("testbed_bug_a")
        assert legacy_res.stopped_by_rabit and res.stopped_by_rabit
        assert not res.completed
        assert mine == legacy

    def test_bug_b_stray_ned2_move(self):
        """Bug B (campaign MH4): completes undetected, as in the paper."""

        def mutations(px):
            ned2 = px["ned2"]
            return [
                InsertAfter(
                    "place_grid",
                    (
                        ScriptLine(
                            "ned2_random_move",
                            "ned2.move_pose(random_location)",
                            lambda: ned2.move_pose([0.365, -0.010, 0.192]),
                        ),
                    ),
                )
            ]

        legacy, legacy_res = _testbed_legacy(mutations)
        mine, res = _preset_bytes("testbed_bug_b")
        assert legacy_res.completed and res.completed  # undetected
        assert mine == legacy

    def test_bug_c_pick_deleted(self):
        """Bug C (campaign L2): completes undetected (no pressure sensor)."""
        legacy, legacy_res = _testbed_legacy(lambda px: [DeleteLine("pick_grid")])
        mine, res = _preset_bytes("testbed_bug_c")
        assert legacy_res.completed and res.completed
        assert mine == legacy

    @pytest.mark.parametrize("spin_rpm", [3000.0, 2000.0])
    def test_centrifuge(self, spin_rpm):
        """The prepared-vial leg: declarative ``prepare`` must reproduce
        the hand-poked vial state byte-for-byte (seeded tracking included)."""
        from repro.lab.workflows import build_centrifuge_workflow
        from repro.testbed.deck import build_testbed_deck, make_testbed_rabit

        deck = build_testbed_deck(noise_sigma=0.003)
        vial = deck.vials["vial_t1"]
        vial.decap_vial()
        vial.contents.solid_mg = 5.0
        vial.contents.liquid_ml = 5.0
        _, proxies, trace = make_testbed_rabit(deck, options=RabitOptions.modified())
        result = run_workflow(build_centrifuge_workflow(proxies, spin_rpm=spin_rpm))
        legacy = _legacy_bytes(trace, result)
        mine, res = _preset_bytes("centrifuge", {"spin_rpm": spin_rpm})
        assert res.completed == result.completed
        assert mine == legacy


# ---------------------------------------------------------------------------
# Two-door lab
# ---------------------------------------------------------------------------


class TestTwoDoorPreset:
    @pytest.mark.parametrize("amount_mg", [3.0, 2.0])
    def test_two_door(self, amount_mg):
        from repro.lab.two_door import (
            build_two_door_deck,
            build_two_door_workflow,
            make_two_door_rabit,
        )

        deck = build_two_door_deck()
        _, proxies, trace = make_two_door_rabit(deck, options=RabitOptions.modified())
        result = run_workflow(build_two_door_workflow(proxies, amount_mg=amount_mg))
        legacy = _legacy_bytes(trace, result)
        mine, res = _preset_bytes("two_door", {"amount_mg": amount_mg})
        assert res.completed and result.completed
        assert mine == legacy


# ---------------------------------------------------------------------------
# The parameterized preset matrix
# ---------------------------------------------------------------------------


class TestPresetMatrix:
    def test_every_entry_builds_a_valid_dag(self):
        matrix = preset_matrix()
        assert len(matrix) >= 15
        for name, params in matrix:
            dag = build_preset(name, params)
            dag.validate()  # raises on any structural or binding error
            assert len(dag.nodes) > 0

    def test_matrix_covers_every_safe_preset(self):
        covered = {name for name, _ in preset_matrix()}
        bug_variants = {"testbed_bug_a", "testbed_bug_b", "testbed_bug_c"}
        assert covered == set(PRESETS) - bug_variants

    def test_parameterization_changes_the_dag(self):
        base = build_preset("solubility", {"dissolution_rounds": 1})
        more = build_preset("solubility", {"dissolution_rounds": 3})
        assert len(more.nodes) == len(base.nodes) + 6  # 3 nodes per round

    def test_one_matrix_entry_runs_clean(self):
        """One cheap end-to-end spot check (the full matrix runs nightly)."""
        _, res = _preset_bytes("two_door", {"amount_mg": 2.0})
        assert res.completed and res.alert is None
