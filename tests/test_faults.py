"""The §IV campaign: mutation operators and the 16-bug evaluation.

The headline assertions reproduce the paper exactly:

- initial RABIT detects 8/16 (50 %);
- modified RABIT detects 12/16 (75 %) — Table V's configuration;
- modified + Extended Simulator detects 13/16 (81 %);
- Table V per-severity rows: Low 3/1, Medium-Low 1/1, Medium-High 6/4,
  High 6/6;
- zero false positives on the unmutated workflows.
"""

import pytest

from repro.devices.world import DamageSeverity
from repro.faults.campaign import CAMPAIGN_BUGS, run_bug
from repro.faults.mutation import (
    DeleteLine,
    InsertAfter,
    MutateLocation,
    ReplaceLine,
    SwapLines,
    apply_mutations,
)
from repro.lab.workflows import ScriptLine


def lines(*ids):
    return [ScriptLine(i, i, lambda: None) for i in ids]


class TestMutationOperators:
    def test_delete(self):
        out = DeleteLine("b").apply_to_script(lines("a", "b", "c"))
        assert [l.line_id for l in out] == ["a", "c"]

    def test_delete_unknown_raises(self):
        with pytest.raises(KeyError, match="no script line"):
            DeleteLine("zz").apply_to_script(lines("a"))

    def test_replace(self):
        out = ReplaceLine("b", ScriptLine("b2", "b2", lambda: None)).apply_to_script(
            lines("a", "b", "c")
        )
        assert [l.line_id for l in out] == ["a", "b2", "c"]

    def test_insert_after(self):
        new = (ScriptLine("x", "x", lambda: None), ScriptLine("y", "y", lambda: None))
        out = InsertAfter("a", new).apply_to_script(lines("a", "b"))
        assert [l.line_id for l in out] == ["a", "x", "y", "b"]

    def test_swap(self):
        out = SwapLines("a", "c").apply_to_script(lines("a", "b", "c"))
        assert [l.line_id for l in out] == ["c", "b", "a"]

    def test_mutate_location_edits_deck(self):
        from repro.testbed.deck import build_testbed_deck

        deck = build_testbed_deck()
        MutateLocation("dosing_pickup_viperx", "viperx", (0.15, 0.45, 0.08)).apply_to_deck(
            deck.world
        )
        assert deck.world.locations.get("dosing_pickup_viperx").coord_for("viperx")[2] == pytest.approx(0.08)

    def test_apply_mutations_composes(self):
        from repro.testbed.deck import build_testbed_deck

        deck = build_testbed_deck()
        out = apply_mutations(
            lines("a", "b", "c"), deck.world, [DeleteLine("a"), SwapLines("b", "c")]
        )
        assert [l.line_id for l in out] == ["c", "b"]


class TestCampaignInventory:
    def test_sixteen_bugs(self):
        assert len(CAMPAIGN_BUGS) == 16

    def test_severity_distribution_matches_table_v(self):
        counts = {}
        for bug in CAMPAIGN_BUGS:
            counts[bug.severity] = counts.get(bug.severity, 0) + 1
        assert counts == {
            DamageSeverity.LOW: 3,
            DamageSeverity.MEDIUM_LOW: 1,
            DamageSeverity.MEDIUM_HIGH: 6,
            DamageSeverity.HIGH: 6,
        }

    def test_all_four_unsafe_categories_present(self):
        assert {bug.category for bug in CAMPAIGN_BUGS} == {1, 2, 3, 4}

    def test_unique_ids(self):
        ids = [bug.bug_id for bug in CAMPAIGN_BUGS]
        assert len(ids) == len(set(ids))

    def test_unknown_config_rejected(self):
        with pytest.raises(KeyError, match="unknown config"):
            run_bug(CAMPAIGN_BUGS[0], "nightly")


class TestHeadlineNumbers:
    def test_initial_detects_8_of_16(self, campaign_result):
        assert campaign_result.detected_count("initial") == 8
        assert campaign_result.detection_rate("initial") == pytest.approx(0.50)

    def test_modified_detects_12_of_16(self, campaign_result):
        assert campaign_result.detected_count("modified") == 12
        assert campaign_result.detection_rate("modified") == pytest.approx(0.75)

    def test_extended_simulator_detects_13_of_16(self, campaign_result):
        assert campaign_result.detected_count("modified_es") == 13
        assert campaign_result.detection_rate("modified_es") == pytest.approx(0.8125)

    def test_table_v_rows(self, campaign_result):
        rows = campaign_result.by_severity("modified")
        assert rows[DamageSeverity.LOW] == (3, 1)
        assert rows[DamageSeverity.MEDIUM_LOW] == (1, 1)
        assert rows[DamageSeverity.MEDIUM_HIGH] == (6, 4)
        assert rows[DamageSeverity.HIGH] == (6, 6)

    def test_every_outcome_matches_paper(self, campaign_result):
        assert campaign_result.mismatches() == []

    def test_detection_monotone_across_revisions(self, campaign_result):
        by_bug = {}
        for outcome in campaign_result.outcomes:
            by_bug.setdefault(outcome.bug.bug_id, {})[outcome.config] = outcome.detected
        for bug_id, per_config in by_bug.items():
            # A later revision never loses a detection an earlier one had.
            assert per_config["initial"] <= per_config["modified"] <= per_config["modified_es"], bug_id


class TestPaperStories:
    def test_detected_bugs_cause_no_damage(self, campaign_result):
        for outcome in campaign_result.outcomes:
            if outcome.detected and outcome.bug.bug_id != "MH2":
                # Preemptive stop: nothing physical happened.  (MH2's
                # detection is also preemptive; included for clarity.)
                assert outcome.damage == (), outcome.bug.bug_id

    def test_missed_bugs_cause_ground_truth_harm(self, campaign_result):
        # Every miss under the modified revision corresponds to real
        # physical damage in the world — the misses matter.
        for outcome in campaign_result.outcomes:
            if outcome.config == "modified" and not outcome.detected:
                assert outcome.damage != (), outcome.bug.bug_id

    def test_bug_a_detected_by_rule_g1(self, campaign_result):
        outcome = next(
            o for o in campaign_result.outcomes
            if o.bug.bug_id == "H1" and o.config == "initial"
        )
        assert outcome.detected and "[G1]" in outcome.alert

    def test_bug_d_initial_breaks_vial_modified_prevents(self, campaign_result):
        initial = next(
            o for o in campaign_result.outcomes
            if o.bug.bug_id == "ML1" and o.config == "initial"
        )
        modified = next(
            o for o in campaign_result.outcomes
            if o.bug.bug_id == "ML1" and o.config == "modified"
        )
        assert not initial.detected
        assert any(d.kind == "vial_crushed" for d in initial.damage)
        assert modified.detected and "held vial" in modified.alert

    def test_bug_b_collides_arms_in_ground_truth(self, campaign_result):
        outcome = next(
            o for o in campaign_result.outcomes
            if o.bug.bug_id == "MH4" and o.config == "modified_es"
        )
        assert not outcome.detected
        assert any(d.kind == "arm_collision" for d in outcome.damage)

    def test_bug_c_completes_without_vial(self, campaign_result):
        outcome = next(
            o for o in campaign_result.outcomes
            if o.bug.bug_id == "L2" and o.config == "modified_es"
        )
        assert not outcome.detected and outcome.completed
        assert any(d.kind == "solid_spill" for d in outcome.damage)

    def test_silent_skip_only_caught_by_es(self, campaign_result):
        per_config = {
            o.config: o for o in campaign_result.outcomes if o.bug.bug_id == "MH3"
        }
        assert not per_config["initial"].detected
        assert not per_config["modified"].detected
        assert per_config["modified_es"].detected
        assert "trajectory" in per_config["modified_es"].alert
