"""Unit tests for repro.geometry.vec."""

import numpy as np
import pytest

from repro.geometry.vec import as_vec3, distance, lerp, midpoints, norm


class TestAsVec3:
    def test_accepts_list(self):
        v = as_vec3([1.0, 2.0, 3.0])
        assert v.shape == (3,)
        assert v.dtype == np.float64

    def test_accepts_tuple_of_ints(self):
        v = as_vec3((1, 2, 3))
        assert v.dtype == np.float64
        assert v[2] == 3.0

    def test_accepts_ndarray(self):
        v = as_vec3(np.array([0.1, 0.2, 0.3]))
        assert np.allclose(v, [0.1, 0.2, 0.3])

    def test_rejects_wrong_arity(self):
        with pytest.raises(ValueError, match="expected a 3D point"):
            as_vec3([1.0, 2.0])

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            as_vec3(np.zeros((2, 3)))


class TestNormDistance:
    def test_norm_unit_axes(self):
        assert norm([1, 0, 0]) == pytest.approx(1.0)
        assert norm([0, 0, -1]) == pytest.approx(1.0)

    def test_norm_pythagorean(self):
        assert norm([3, 4, 0]) == pytest.approx(5.0)

    def test_distance_symmetry(self):
        a, b = [0.1, 0.2, 0.3], [-0.4, 0.0, 0.9]
        assert distance(a, b) == pytest.approx(distance(b, a))

    def test_distance_zero_for_same_point(self):
        assert distance([1, 2, 3], [1, 2, 3]) == 0.0


class TestLerp:
    def test_endpoints(self):
        a, b = [0, 0, 0], [1, 2, 3]
        assert np.allclose(lerp(a, b, 0.0), a)
        assert np.allclose(lerp(a, b, 1.0), b)

    def test_midpoint(self):
        assert np.allclose(lerp([0, 0, 0], [2, 4, 6], 0.5), [1, 2, 3])

    def test_extrapolation(self):
        assert np.allclose(lerp([0, 0, 0], [1, 0, 0], 2.0), [2, 0, 0])


class TestMidpoints:
    def test_count_and_spacing(self):
        points = list(midpoints([0, 0, 0], [4, 0, 0], count=3))
        assert len(points) == 3
        assert np.allclose(points[0], [1, 0, 0])
        assert np.allclose(points[1], [2, 0, 0])
        assert np.allclose(points[2], [3, 0, 0])

    def test_strictly_interior(self):
        points = list(midpoints([0, 0, 0], [1, 1, 1], count=5))
        for p in points:
            assert np.all(p > 0) and np.all(p < 1)
