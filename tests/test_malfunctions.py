"""Device-malfunction coverage — Fig. 2 lines 13-15 across fault types.

"If S_actual != S_expected, RABIT assumes that at least one device
malfunctioned and raises an alert."  Each test injects a different
physical fault and checks the expected-vs-actual comparison catches it
through ordinary status commands.
"""

import pytest

from repro.core.errors import AlertKind, SafetyViolation
from repro.core.monitor import RabitOptions
from repro.lab.hein import build_hein_deck, make_hein_rabit


def _ferry_vial_into_dosing(px):
    px["vial_1"].decap_vial()
    px["dosing_device"].open_door()
    px["ur3e"].move_to_location("grid_a1_safe")
    px["ur3e"].pick_up_vial("grid_a1")
    px["ur3e"].move_to_location("grid_a1_safe")
    px["ur3e"].move_to_location("dosing_approach")
    px["ur3e"].place_vial("dosing_interior")
    px["ur3e"].move_to_location("dosing_approach")
    px["dosing_device"].close_door()


class TestDoorJam:
    def test_jammed_door_caught_on_open(self):
        deck = build_hein_deck()
        rabit, px, _ = make_hein_rabit(deck)
        deck.devices["dosing_device"].door.jam()
        with pytest.raises(SafetyViolation) as excinfo:
            px["dosing_device"].open_door()
        assert excinfo.value.alert.kind is AlertKind.DEVICE_MALFUNCTION
        assert "door_status" in excinfo.value.alert.message

    def test_jammed_lid_caught_on_close(self):
        deck = build_hein_deck()
        rabit, px, _ = make_hein_rabit(deck)
        deck.devices["centrifuge"].door.jam()  # lid starts open
        with pytest.raises(SafetyViolation) as excinfo:
            px["centrifuge"].close_door()
        assert excinfo.value.alert.kind is AlertKind.DEVICE_MALFUNCTION


class TestDoserMiscalibration:
    def test_overdispensing_detected_post_execution(self):
        deck = build_hein_deck()
        rabit, px, _ = make_hein_rabit(deck)
        deck.devices["dosing_device"].miscalibrate(1.5)
        _ferry_vial_into_dosing(px)
        with pytest.raises(SafetyViolation) as excinfo:
            px["dosing_device"].dose_solid(5)
        alert = excinfo.value.alert
        assert alert.kind is AlertKind.DEVICE_MALFUNCTION
        assert "dispensed_mg" in alert.message
        # Detection is post-hoc: the material is already dispensed.
        assert deck.vials["vial_1"].contents.solid_mg == pytest.approx(7.5)

    def test_underdispensing_also_detected(self):
        deck = build_hein_deck()
        rabit, px, _ = make_hein_rabit(deck)
        deck.devices["dosing_device"].miscalibrate(0.5)
        _ferry_vial_into_dosing(px)
        with pytest.raises(SafetyViolation) as excinfo:
            px["dosing_device"].dose_solid(5)
        assert excinfo.value.alert.kind is AlertKind.DEVICE_MALFUNCTION

    def test_calibrated_doser_is_silent(self):
        deck = build_hein_deck()
        rabit, px, _ = make_hein_rabit(deck)
        _ferry_vial_into_dosing(px)
        px["dosing_device"].dose_solid(5)
        assert rabit.alert_count == 0

    def test_factor_must_be_positive(self):
        deck = build_hein_deck()
        with pytest.raises(ValueError):
            deck.devices["dosing_device"].miscalibrate(0.0)


class TestFailSafeAfterMalfunction:
    def test_state_adoption_keeps_monitoring_consistent(self):
        # After a malfunction alert in fail-safe (non-raising) mode, the
        # monitor adopts S_actual (Fig. 2 line 16) so subsequent checks
        # reason from reality, not from the failed expectation.
        deck = build_hein_deck()
        rabit, px, _ = make_hein_rabit(
            deck, options=RabitOptions.modified(preemptive_stop=False)
        )
        deck.devices["dosing_device"].door.jam()
        px["dosing_device"].open_door()  # jammed: stays closed
        assert rabit.alert_count == 1
        assert rabit.state.get("door_status", "dosing_device") == "closed"
        # A move into the device is now (correctly) blocked by G1 on the
        # *actual* door state.
        px["ur3e"].move_to_location("dosing_interior")
        assert rabit.last_alert().rule_id == "G1"
