"""Unit tests for repro.geometry.shapes."""

import numpy as np
import pytest

from repro.geometry.shapes import Cuboid, bounding_cuboid


class TestCuboidConstruction:
    def test_corners_ordered(self):
        with pytest.raises(ValueError, match="min corner"):
            Cuboid((1, 0, 0), (0, 1, 1), name="bad")

    def test_from_center(self):
        box = Cuboid.from_center([0.5, 0.5, 0.5], [1, 1, 1])
        assert np.allclose(box.lo, [0, 0, 0])
        assert np.allclose(box.hi, [1, 1, 1])

    def test_degenerate_slab_allowed(self):
        box = Cuboid((0, 0, 0), (1, 1, 0), name="slab")
        assert box.volume == 0.0
        assert box.contains([0.5, 0.5, 0.0])

    def test_accessors(self):
        box = Cuboid((0, 0, 0), (2, 4, 6))
        assert np.allclose(box.center, [1, 2, 3])
        assert np.allclose(box.size, [2, 4, 6])
        assert box.volume == pytest.approx(48.0)


class TestCuboidQueries:
    def test_contains_interior_and_boundary(self):
        box = Cuboid((0, 0, 0), (1, 1, 1))
        assert box.contains([0.5, 0.5, 0.5])
        assert box.contains([1.0, 1.0, 1.0])  # boundary inclusive
        assert not box.contains([1.001, 0.5, 0.5])

    def test_contains_with_tolerance(self):
        box = Cuboid((0, 0, 0), (1, 1, 1))
        assert box.contains([1.05, 0.5, 0.5], tol=0.1)
        assert not box.contains([1.2, 0.5, 0.5], tol=0.1)

    def test_closest_point_inside_is_identity(self):
        box = Cuboid((0, 0, 0), (1, 1, 1))
        assert np.allclose(box.closest_point([0.3, 0.7, 0.5]), [0.3, 0.7, 0.5])

    def test_closest_point_clamps(self):
        box = Cuboid((0, 0, 0), (1, 1, 1))
        assert np.allclose(box.closest_point([2, -1, 0.5]), [1, 0, 0.5])

    def test_distance_to_point(self):
        box = Cuboid((0, 0, 0), (1, 1, 1))
        assert box.distance_to_point([0.5, 0.5, 0.5]) == 0.0
        assert box.distance_to_point([2, 0.5, 0.5]) == pytest.approx(1.0)
        assert box.distance_to_point([2, 2, 1]) == pytest.approx(np.sqrt(2))

    def test_corners_count_and_extremes(self):
        box = Cuboid((0, 0, 0), (1, 2, 3))
        corners = box.corners()
        assert corners.shape == (8, 3)
        assert np.allclose(corners.min(axis=0), [0, 0, 0])
        assert np.allclose(corners.max(axis=0), [1, 2, 3])


class TestCuboidOperations:
    def test_inflated_grows_every_face(self):
        box = Cuboid((0, 0, 0), (1, 1, 1), name="d")
        grown = box.inflated(0.1)
        assert np.allclose(grown.lo, [-0.1] * 3)
        assert np.allclose(grown.hi, [1.1] * 3)
        assert grown.name == "d"

    def test_inflated_negative_margin_shrinks(self):
        box = Cuboid((0, 0, 0), (1, 1, 1))
        small = box.inflated(-0.25)
        assert np.allclose(small.size, [0.5] * 3)

    def test_inflated_rejects_inversion(self):
        box = Cuboid((0, 0, 0), (1, 1, 1))
        with pytest.raises(ValueError, match="invert"):
            box.inflated(-0.6)

    def test_translated(self):
        box = Cuboid((0, 0, 0), (1, 1, 1)).translated([1, 2, 3])
        assert np.allclose(box.lo, [1, 2, 3])
        assert np.allclose(box.hi, [2, 3, 4])

    def test_renamed(self):
        assert Cuboid((0, 0, 0), (1, 1, 1), name="a").renamed("b").name == "b"


class TestBoundingCuboid:
    def test_bounds_points(self):
        box = bounding_cuboid([[0, 0, 0], [1, -1, 2], [0.5, 3, -0.5]])
        assert np.allclose(box.lo, [0, -1, -0.5])
        assert np.allclose(box.hi, [1, 3, 2])

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            bounding_cuboid([])
