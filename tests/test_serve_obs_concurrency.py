"""Observability under asyncio concurrency: the serve regression suite.

The guard service multiplexes many sessions on one event loop, which
exposed two latent concurrency hazards in ``repro.obs``:

1. the span stack was effectively global — two interleaved
   ``guard_async`` calls could parent one session's child spans under
   the *other* session's open guard span (fixed: the stack lives in a
   ``ContextVar``, one stack per task);
2. ``MetricsRegistry`` get-or-create raced under threads (fixed: a
   lock), which matters because benchmark workers and the service share
   the process-global registry.

These tests hammer both from interleaved tasks/threads and pin the
fixed behaviour; they also re-check that rule-verdict caches stay
per-session when their guards interleave.
"""

import asyncio
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import OBS
from repro.serve.batcher import SweepBatcher
from repro.serve.session import GuardSession


@pytest.fixture(autouse=True)
def _clean_global_obs():
    OBS.disable()
    OBS.reset()
    yield
    OBS.disable()
    OBS.reset()


def _ancestors(span, by_id):
    chain = []
    parent = span.parent_id
    while parent is not None:
        parent_span = by_id[parent]
        chain.append(parent_span)
        parent = parent_span.parent_id
    return chain


def test_interleaved_tasks_keep_separate_span_stacks():
    """Two tasks nesting spans around awaits never cross-parent."""

    async def worker(tag, barrier):
        with OBS.span(f"outer.{tag}"):
            await barrier.wait()  # both outers are open simultaneously
            with OBS.span(f"inner.{tag}"):
                await asyncio.sleep(0)
            await asyncio.sleep(0)
            with OBS.span(f"inner2.{tag}"):
                await asyncio.sleep(0)

    async def main():
        barrier = asyncio.Barrier(2)
        await asyncio.gather(worker("a", barrier), worker("b", barrier))

    OBS.enable()
    asyncio.run(main())

    spans = OBS.collector.spans()
    by_id = {s.span_id: s for s in spans}
    for span in spans:
        if span.name.startswith("inner"):
            tag = span.name.split(".")[1]
            parents = [a.name for a in _ancestors(span, by_id)]
            assert parents == [f"outer.{tag}"], (
                f"{span.name} parented under {parents} — span stacks leaked "
                "across tasks"
            )


def test_interleaved_sessions_parent_guard_spans_correctly():
    """Two live sessions' guard/execute span trees never intermix."""

    async def main():
        batcher = SweepBatcher()
        batcher.start()
        a = GuardSession(1, "hein_lean", batcher=batcher, io_latency=0.003)
        b = GuardSession(2, "hein_lean", batcher=batcher, io_latency=0.003)

        async def drive(session, tag, method, args):
            with OBS.span(f"session.{tag}"):
                for _ in range(4):
                    response = await session.run_command("ur3e", method, args)
                    assert response["ok"], response

        # Distinct labels per session let each guard span be attributed
        # to its issuer from the span data alone.
        await asyncio.gather(
            drive(a, "a", "move_to_location", ("grid_a1_safe",)),
            drive(b, "b", "go_to_home_pose", ()),
        )
        await batcher.stop()

    OBS.enable()
    asyncio.run(main())

    spans = OBS.collector.spans()
    by_id = {s.span_id: s for s in spans}
    guards = [s for s in spans if s.name == "rabit.guard"]
    assert len(guards) == 8
    for guard in guards:
        expected = "session.a" if guard.attributes["label"] == "move_robot" else "session.b"
        roots = [a.name for a in _ancestors(guard, by_id) if a.name.startswith("session.")]
        assert roots == [expected], (
            f"guard span (label={guard.attributes['label']}) rooted under "
            f"{roots}, expected [{expected!r}]"
        )
    # Children (validate/execute/fetch_state) must sit under a guard of
    # the same tree, never under the sibling session's guard.  The only
    # legitimate root-level fetch is the one session construction runs
    # before any guard exists.
    for span in spans:
        if span.name in ("rabit.validate", "rabit.execute"):
            assert by_id[span.parent_id].name == "rabit.guard", span.name
        elif span.name == "rabit.fetch_state" and span.parent_id is not None:
            assert by_id[span.parent_id].name == "rabit.guard"


def test_interleaved_sessions_keep_private_rule_caches():
    async def main():
        batcher = SweepBatcher()
        batcher.start()
        a = GuardSession(1, "hein_lean", batcher=batcher, io_latency=0.001)
        b = GuardSession(2, "hein_lean", batcher=batcher, io_latency=0.001)
        assert a.rabit.rule_cache is not b.rabit.rule_cache

        async def drive(session):
            for _ in range(4):
                await session.run_command("ur3e", "go_to_home_pose", ())

        await asyncio.gather(drive(a), drive(b))
        await batcher.stop()
        # Both sessions saw the identical command sequence, so their
        # private caches must tell the identical story — any hit/miss
        # asymmetry would mean one session's verdicts leaked into the
        # other's cache.
        assert (a.rabit.rule_cache.hits, a.rabit.rule_cache.misses) == (
            b.rabit.rule_cache.hits,
            b.rabit.rule_cache.misses,
        )
        assert a.rabit.rule_cache.misses >= 1

    asyncio.run(main())


def test_metrics_registry_get_or_create_is_thread_safe():
    OBS.enable()
    registry = OBS.registry

    def create(i):
        # Everyone fights over the same few names; each name must
        # resolve to exactly one metric object.
        results = []
        for j in range(25):
            name = f"serve_race_metric_{j % 5}"
            results.append((name, registry.counter(name, "race test")))
        return results

    with ThreadPoolExecutor(max_workers=8) as pool:
        all_results = [r for chunk in pool.map(create, range(8)) for r in chunk]

    canonical = {}
    for name, metric in all_results:
        canonical.setdefault(name, metric)
        assert metric is canonical[name], (
            f"{name} resolved to two distinct metric objects under threads"
        )
