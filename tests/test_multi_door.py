"""The §V-C multi-door extension: two arms, one device, two named doors.

"Devices might have multiple doors, for instance, for two robot arms to
approach the device simultaneously.  In its current state, RABIT does
not handle this."  This reproduction does: per-door state keys, per-door
G1 checks, all-doors-closed G9, and a G2 that only protects the door an
arm actually entered through — so simultaneous two-door access works.
"""

import math

import pytest

from repro.core.config import build_model
from repro.core.errors import SafetyViolation
from repro.core.interceptor import instrument
from repro.core.monitor import Rabit, RabitOptions
from repro.devices.base import DoorState
from repro.devices.container import Vial
from repro.devices.locations import LocationKind
from repro.devices.multi_door import MultiDoorDosingDevice
from repro.devices.robot import RobotArmDevice
from repro.devices.world import LabWorld
from repro.geometry.shapes import Cuboid
from repro.geometry.transforms import identity, rotation_z, translation
from repro.geometry.walls import Workspace
from repro.kinematics.profiles import NED2, VIPERX_300

NED2_BASE = translation([0.82, 0.0, 0.0]) @ rotation_z(math.pi)

#: The shared device sits between the arms; front slot serves ViperX,
#: back slot serves Ned2 (world frame == viperx frame).
DEVICE_BOX = {"min": [0.40, 0.18, 0.0], "max": [0.60, 0.38, 0.30]}
FRONT_SLOT_VIPERX = [0.44, 0.28, 0.12]
BACK_SLOT_WORLD = [0.55, 0.28, 0.12]  # ned2 frame: (0.27, -0.28, 0.12)


def build_mini_lab():
    world = LabWorld(
        "two-door", Workspace(bounds=Cuboid((-0.7, -0.6, -0.05), (1.5, 0.6, 1.0), name="room"))
    )
    world.register_frame("viperx", identity())
    world.register_frame("ned2", NED2_BASE)
    world.add_surface(Cuboid((-0.6, -0.6, -0.02), (1.4, 0.6, 0.03), name="platform"))

    back_ned2 = NED2_BASE.inverse().apply(BACK_SLOT_WORLD)
    world.locations.define(
        "mdoser_front", LocationKind.DEVICE_INTERIOR,
        {"viperx": FRONT_SLOT_VIPERX}, device="mdoser", via_door="front",
    )
    world.locations.define(
        "mdoser_back", LocationKind.DEVICE_INTERIOR,
        {"ned2": [float(x) for x in back_ned2]}, device="mdoser", via_door="back",
    )
    world.locations.define(
        "front_approach", LocationKind.DEVICE_APPROACH,
        {"viperx": [0.44, 0.10, 0.20]}, device="mdoser",
    )
    world.locations.define(
        "back_approach", LocationKind.DEVICE_APPROACH,
        {"ned2": [0.27, -0.10, 0.20]}, device="mdoser",
    )

    viperx = world.add_device(RobotArmDevice("viperx", VIPERX_300, world))
    ned2 = world.add_device(RobotArmDevice("ned2", NED2, world))
    mdoser = world.add_device(
        MultiDoorDosingDevice(
            "mdoser", world, door_names=("front", "back"),
            door_initial=DoorState.CLOSED,
        ),
        footprint=Cuboid(tuple(DEVICE_BOX["min"]), tuple(DEVICE_BOX["max"]), name="mdoser"),
    )
    vial = world.add_vial(Vial("mv", stoppered=False), at_location="mdoser_front")

    config = {
        "lab": "two-door",
        "devices": [
            {"name": "viperx", "type": "robot_arm", "class": "RobotArmDevice",
             "frame": "viperx"},
            {"name": "ned2", "type": "robot_arm", "class": "RobotArmDevice",
             "frame": "ned2"},
            {"name": "mdoser", "type": "dosing_system", "class": "MultiDoorDosingDevice",
             "door": {"present": True, "initial": "closed", "names": ["front", "back"]},
             "load_location": "mdoser_front"},
            {"name": "mv", "type": "container", "class": "Vial",
             "capacity_solid_mg": 10.0},
        ],
        "locations": [
            {"name": "mdoser_front", "kind": "device_interior", "device": "mdoser",
             "via_door": "front", "coords": {"viperx": FRONT_SLOT_VIPERX}},
            {"name": "mdoser_back", "kind": "device_interior", "device": "mdoser",
             "via_door": "back", "coords": {"ned2": [float(x) for x in back_ned2]}},
            {"name": "front_approach", "kind": "device_approach", "device": "mdoser",
             "coords": {"viperx": [0.44, 0.10, 0.20]}},
            {"name": "back_approach", "kind": "device_approach", "device": "mdoser",
             "coords": {"ned2": [0.27, -0.10, 0.20]}},
        ],
        "obstacles": [
            {"name": "mdoser", "surface": False, "frames": {"viperx": dict(DEVICE_BOX)}},
            {"name": "platform", "surface": True,
             "frames": {"viperx": {"min": [-0.6, -0.6, -0.02], "max": [1.4, 0.6, 0.03]}}},
        ],
        "custom_rules": [],
        "reliable_container_tracking": True,
    }
    model = build_model(config)
    rabit = Rabit(model=model, devices={
        "viperx": viperx, "ned2": ned2, "mdoser": mdoser, "mv": vial,
    }, options=RabitOptions.modified())
    rabit.seed_tracked("container_at", "mv", "mdoser_front")
    rabit.seed_tracked("container_solid", "mv", 0.0)
    rabit.seed_tracked("container_liquid", "mv", 0.0)
    rabit.initialize()
    proxies, trace = instrument(rabit.devices, rabit, clock=rabit.clock)
    return world, rabit, proxies


class TestPerDoorState:
    def test_initial_state_has_compound_keys(self):
        world, rabit, px = build_mini_lab()
        assert rabit.state.get("door_status", "mdoser:front") == "closed"
        assert rabit.state.get("door_status", "mdoser:back") == "closed"

    def test_doors_toggle_independently(self):
        world, rabit, px = build_mini_lab()
        px["mdoser"].open_door("front")
        assert rabit.state.get("door_status", "mdoser:front") == "open"
        assert rabit.state.get("door_status", "mdoser:back") == "closed"


class TestPerDoorG1:
    def test_entry_blocked_by_its_own_closed_door(self):
        world, rabit, px = build_mini_lab()
        px["mdoser"].open_door("back")  # the WRONG door for viperx
        px["viperx"].move_to_location("front_approach")
        with pytest.raises(SafetyViolation) as excinfo:
            px["viperx"].move_to_location("mdoser_front")
        assert excinfo.value.alert.rule_id == "G1"
        assert "mdoser:front" in excinfo.value.alert.message

    def test_entry_allowed_through_its_open_door(self):
        world, rabit, px = build_mini_lab()
        px["mdoser"].open_door("front")
        px["viperx"].move_to_location("front_approach")
        px["viperx"].move_to_location("mdoser_front")
        assert rabit.alert_count == 0
        assert world.robot_inside("viperx") == "mdoser"
        assert world.robot_entry_door("viperx") == "front"


class TestSimultaneousAccess:
    def test_both_arms_inside_through_different_doors(self):
        world, rabit, px = build_mini_lab()
        px["mdoser"].open_door("front")
        px["mdoser"].open_door("back")
        px["viperx"].move_to_location("front_approach")
        px["viperx"].move_to_location("mdoser_front")
        px["ned2"].move_to_location("back_approach")
        px["ned2"].move_to_location("mdoser_back")
        assert rabit.alert_count == 0
        assert set(world.robots_inside("mdoser")) == {"viperx", "ned2"}

    def test_g2_protects_only_the_entry_door(self):
        world, rabit, px = build_mini_lab()
        px["mdoser"].open_door("front")
        px["mdoser"].open_door("back")
        px["viperx"].move_to_location("front_approach")
        px["viperx"].move_to_location("mdoser_front")
        # Closing the BACK door is fine: nobody entered through it.
        px["mdoser"].close_door("back")
        assert rabit.alert_count == 0
        # Closing the FRONT door onto the arm inside is vetoed.
        with pytest.raises(SafetyViolation) as excinfo:
            px["mdoser"].close_door("front")
        assert excinfo.value.alert.rule_id == "G2"


class TestG9AllDoors:
    def test_dosing_requires_every_door_closed(self):
        world, rabit, px = build_mini_lab()
        px["mdoser"].open_door("back")
        with pytest.raises(SafetyViolation) as excinfo:
            px["mdoser"].dose_solid(3)
        assert excinfo.value.alert.rule_id == "G9"
        assert "mdoser:back" in excinfo.value.alert.message

    def test_dosing_with_all_doors_closed_succeeds(self):
        world, rabit, px = build_mini_lab()
        px["mdoser"].dose_solid(3)
        assert rabit.alert_count == 0
        assert world.vial("mv").contents.solid_mg == pytest.approx(3.0)


class TestGroundTruthDoorPhysics:
    def test_crashing_through_the_named_closed_door(self):
        world, rabit, px = build_mini_lab()
        # Bypass RABIT: command the raw device to reproduce the crash.
        world.device("viperx").move_to_location("front_approach")
        world.device("viperx").move_to_location("mdoser_front")
        assert any(d.kind == "door_crash" for d in world.damage_log)

    def test_exit_uses_the_entry_door(self):
        world, rabit, px = build_mini_lab()
        px["mdoser"].open_door("front")
        px["viperx"].move_to_location("front_approach")
        px["viperx"].move_to_location("mdoser_front")
        # Force the front door shut around the arm, then exit: crash.
        world.device("mdoser").doors["front"].set_state(DoorState.CLOSED)
        world.device("viperx").move_to_location("front_approach")
        assert any(d.kind == "door_crash" for d in world.damage_log)
