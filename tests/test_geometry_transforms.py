"""Unit tests for repro.geometry.transforms."""

import math

import numpy as np
import pytest

from repro.geometry.transforms import (
    FrameRegistry,
    Transform,
    estimate_rigid_transform,
    identity,
    rotation_x,
    rotation_y,
    rotation_z,
    translation,
)


class TestTransform:
    def test_identity_maps_points_unchanged(self):
        p = [0.3, -0.2, 0.9]
        assert np.allclose(identity().apply(p), p)

    def test_translation(self):
        t = translation([1, 2, 3])
        assert np.allclose(t.apply([0, 0, 0]), [1, 2, 3])
        assert np.allclose(t.translation, [1, 2, 3])

    def test_rotation_z_quarter_turn(self):
        r = rotation_z(math.pi / 2)
        assert np.allclose(r.apply([1, 0, 0]), [0, 1, 0], atol=1e-12)

    def test_rotation_x_quarter_turn(self):
        r = rotation_x(math.pi / 2)
        assert np.allclose(r.apply([0, 1, 0]), [0, 0, 1], atol=1e-12)

    def test_rotation_y_quarter_turn(self):
        r = rotation_y(math.pi / 2)
        assert np.allclose(r.apply([0, 0, 1]), [1, 0, 0], atol=1e-12)

    def test_compose_order(self):
        # compose applies the right operand first.
        t = translation([1, 0, 0])
        r = rotation_z(math.pi / 2)
        p = (r @ t).apply([0, 0, 0])  # translate to (1,0,0), then rotate
        assert np.allclose(p, [0, 1, 0], atol=1e-12)

    def test_inverse_roundtrip(self):
        t = translation([0.5, -1.0, 2.0]) @ rotation_z(0.7) @ rotation_x(-0.3)
        p = [0.1, 0.2, 0.3]
        assert np.allclose(t.inverse().apply(t.apply(p)), p, atol=1e-12)

    def test_apply_many_matches_apply(self):
        t = translation([1, 2, 3]) @ rotation_y(0.5)
        pts = np.array([[0, 0, 0], [1, 1, 1], [-0.5, 0.25, 2.0]])
        batch = t.apply_many(pts)
        for row, p in zip(batch, pts):
            assert np.allclose(row, t.apply(p))

    def test_matrix_is_readonly(self):
        t = translation([1, 0, 0])
        with pytest.raises(ValueError):
            t.matrix[0, 3] = 99.0

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="4x4"):
            Transform(np.eye(3))

    def test_is_close(self):
        assert identity().is_close(rotation_z(0.0))
        assert not identity().is_close(rotation_z(0.1))


class TestFrameRegistry:
    def test_world_frame_is_identity(self):
        reg = FrameRegistry()
        assert reg.to_world("world").is_close(identity())

    def test_register_and_map(self):
        reg = FrameRegistry()
        reg.register("arm", translation([1.0, 0.0, 0.0]))
        assert np.allclose(reg.map_point([0, 0, 0], "arm", "world"), [1, 0, 0])
        assert np.allclose(reg.map_point([1, 0, 0], "world", "arm"), [0, 0, 0])

    def test_transform_between_two_arms(self):
        reg = FrameRegistry()
        reg.register("a", translation([1, 0, 0]))
        reg.register("b", translation([0, 2, 0]))
        # A point at a's origin is at (1, -2, 0) in b's frame.
        assert np.allclose(reg.map_point([0, 0, 0], "a", "b"), [1, -2, 0])

    def test_unknown_frame_raises(self):
        with pytest.raises(KeyError, match="unknown frame"):
            FrameRegistry().to_world("nope")

    def test_cannot_reregister_world(self):
        with pytest.raises(ValueError):
            FrameRegistry().register("world", identity())


class TestEstimateRigidTransform:
    def test_recovers_exact_transform(self):
        truth = translation([0.3, -0.1, 0.2]) @ rotation_z(0.8) @ rotation_x(0.2)
        src = np.array(
            [[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1], [1, 1, 1], [0.3, -0.2, 0.7]]
        )
        dst = [truth.apply(p) for p in src]
        fitted = estimate_rigid_transform(src, dst)
        assert fitted.is_close(truth, atol=1e-9)

    def test_rotation_stays_proper(self):
        # Even with noisy correspondences, the fit must be a rotation
        # (determinant +1), never a reflection.
        rng = np.random.default_rng(3)
        src = rng.uniform(-1, 1, size=(10, 3))
        dst = src[:, [0, 1, 2]] + rng.normal(0, 0.1, size=(10, 3))
        fitted = estimate_rigid_transform(src, dst)
        assert np.linalg.det(fitted.rotation) == pytest.approx(1.0, abs=1e-9)

    def test_requires_three_points(self):
        with pytest.raises(ValueError, match="at least three"):
            estimate_rigid_transform([[0, 0, 0], [1, 1, 1]], [[0, 0, 0], [1, 1, 1]])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="equal length"):
            estimate_rigid_transform(
                [[0, 0, 0], [1, 0, 0], [0, 1, 0]], [[0, 0, 0], [1, 0, 0]]
            )
