"""Tests for the three-stage validation pipeline."""

import pytest

from repro.lab.pipeline import ThreeStageValidator
from repro.lab.stage import Stage
from repro.lab.workflows import build_solubility_workflow


def mutate_dosing_pickup_too_low(deck):
    """The candidate edit under test: a Bug-D-style z error in the
    location table (grid pickup deep inside the grid body)."""
    deck.world.locations.get("grid_a1").set_coord("ur3e", [0.30, -0.05, 0.02])


class TestSafeWorkflowClimbs:
    @pytest.fixture(scope="class")
    def pipeline(self):
        return ThreeStageValidator().validate(build_solubility_workflow)

    def test_promoted_through_all_stages(self, pipeline):
        assert pipeline.promoted_to_production
        assert [o.stage for o in pipeline.outcomes] == [
            Stage.SIMULATOR,
            Stage.TESTBED,
            Stage.PRODUCTION,
        ]

    def test_no_risk_was_ever_exposed(self, pipeline):
        assert pipeline.total_risk_exposure == 0.0
        assert pipeline.rejected_at is None


class TestDefectiveWorkflowStopsEarly:
    @pytest.fixture(scope="class")
    def pipeline(self):
        return ThreeStageValidator().validate(
            build_solubility_workflow, mutate_deck=mutate_dosing_pickup_too_low
        )

    def test_rejected_at_the_simulator_stage(self, pipeline):
        assert not pipeline.promoted_to_production
        assert pipeline.rejected_at is Stage.SIMULATOR
        assert len(pipeline.outcomes) == 1  # never climbed further

    def test_rejection_is_preemptive(self, pipeline):
        outcome = pipeline.outcomes[0]
        assert outcome.result.stopped_by_rabit
        assert outcome.damage_events == 0
        assert outcome.risk_exposure == 0.0

    def test_describe_mentions_stage_and_alert(self, pipeline):
        text = pipeline.outcomes[0].describe()
        assert "simulator" in text and "REJECTED" in text


class TestStageSubsets:
    def test_production_only_run(self):
        pipeline = ThreeStageValidator(stages=(Stage.PRODUCTION,)).validate(
            build_solubility_workflow
        )
        assert pipeline.promoted_to_production
        assert len(pipeline.outcomes) == 1
