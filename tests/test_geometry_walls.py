"""Unit tests for repro.geometry.walls."""

import pytest

from repro.geometry.shapes import Cuboid
from repro.geometry.walls import SoftwareWall, Workspace


class TestSoftwareWall:
    def test_allows_below_boundary(self):
        wall = SoftwareWall((1, 0, 0), 0.5, name="w")
        assert wall.allows([0.4, 0, 0])
        assert wall.allows([0.5, 0, 0])  # boundary inclusive
        assert not wall.allows([0.6, 0, 0])

    def test_normal_is_normalized(self):
        wall = SoftwareWall((2, 0, 0), 1.0)
        assert wall.normal == (1.0, 0.0, 0.0)
        assert wall.offset == pytest.approx(0.5)
        assert wall.allows([0.4, 0, 0])
        assert not wall.allows([0.6, 0, 0])

    def test_signed_distance(self):
        wall = SoftwareWall((0, 1, 0), 0.0)
        assert wall.signed_distance([0, -1, 0]) == pytest.approx(-1.0)
        assert wall.signed_distance([0, 2, 0]) == pytest.approx(2.0)

    def test_flipped_is_complement(self):
        wall = SoftwareWall((1, 0, 0), 0.5)
        other = wall.flipped()
        for x in (-1.0, 0.0, 0.49, 0.51, 1.0):
            point = [x, 0, 0]
            # Exactly on the wall both sides allow; elsewhere exactly one.
            if abs(x - 0.5) > 1e-9:
                assert wall.allows(point) != other.allows(point)

    def test_zero_normal_rejected(self):
        with pytest.raises(ValueError, match="nonzero"):
            SoftwareWall((0, 0, 0), 1.0)


class TestWorkspace:
    def setup_method(self):
        self.ws = Workspace(bounds=Cuboid((-1, -1, 0), (1, 1, 2), name="room"))

    def test_allows_interior(self):
        assert self.ws.allows([0, 0, 1])

    def test_ground_violation_message(self):
        assert "ground" in self.ws.violation([0, 0, -0.5])

    def test_ceiling_violation_message(self):
        assert "ceiling" in self.ws.violation([0, 0, 3])

    def test_side_wall_violation_message(self):
        assert "wall" in self.ws.violation([2, 0, 1])

    def test_software_wall_violation(self):
        self.ws.add_wall(SoftwareWall((1, 0, 0), 0.5, name="divider"))
        reason = self.ws.violation([0.8, 0, 1])
        assert reason is not None and "divider" in reason

    def test_polyline_violation_finds_first_bad_waypoint(self):
        assert self.ws.polyline_violation([[0, 0, 1], [0.5, 0, 1]]) is None
        assert self.ws.polyline_violation([[0, 0, 1], [0, 0, 3]]) is not None
