"""The random-DAG fuzzer: determinism, validity, and the Monte Carlo
``generator="dag"`` path (sequential == sharded, byte for byte).

Sample counts are deliberately small — each scored case runs a workflow
twice (ground truth + monitored).  The nightly sweep covers volume.
"""

from repro.faults.montecarlo import run_monte_carlo
from repro.workflow import random_dag, score_dag
from repro.workflow.fuzz import fuzz_descriptions

import pytest

SEED = 2024


class TestGeneratorDeterminism:
    def test_same_seed_same_dags(self):
        assert fuzz_descriptions(SEED, 6) == fuzz_descriptions(SEED, 6)

    def test_different_seed_different_dags(self):
        assert fuzz_descriptions(SEED, 6) != fuzz_descriptions(2025, 6)

    def test_cases_are_independent_of_sample_count(self):
        """Growing the sweep never changes an earlier case (the same
        spawn-key contract as the mutant sweep)."""
        assert fuzz_descriptions(SEED, 8)[:3] == fuzz_descriptions(SEED, 3)

    def test_regeneration_is_spec_identical(self):
        for index in range(4):
            first = random_dag(SEED, index)
            again = random_dag(SEED, index)
            assert first.spec_bytes() == again.spec_bytes()

    def test_generated_dags_are_valid_and_bounded(self):
        for index in range(8):
            dag = random_dag(SEED, index)
            dag.validate()  # raises on structural/binding errors
            assert dag.deck == "testbed"
            backbone = [n for n in dag.nodes if n.startswith("n")]
            assert 4 <= len(backbone) <= 11

    def test_some_case_declares_a_recovery_tail(self):
        """About a third of cases route risky-node failures into a
        recovery tail; with 24 cases the odds of seeing none are ~6e-5."""
        found = False
        for index in range(24):
            dag = random_dag(SEED, index)
            if "recover_home" in dag.nodes:
                found = True
                assert any(e.on == "failure" for e in dag.edges)
        assert found


class TestScoring:
    def test_score_dag_is_pure(self):
        first = score_dag(1, SEED)
        again = score_dag(1, SEED)
        assert first == again
        assert first.damage_kinds != ("harness_error",)

    def test_sweep_populates_confusion_matrix(self):
        report = run_monte_carlo(samples=6, seed=SEED, generator="dag")
        assert len(report.outcomes) == 6
        assert all(
            o.damage_kinds != ("harness_error",) for o in report.outcomes
        )
        # The pose box straddles free space and obstacles by design, so a
        # seeded sweep exercises both harmful and harmless cases.
        assert any(o.harmful for o in report.outcomes)

    def test_sharded_sweep_is_byte_identical(self):
        sequential = run_monte_carlo(samples=4, seed=SEED, generator="dag", workers=1)
        sharded = run_monte_carlo(samples=4, seed=SEED, generator="dag", workers=2)
        assert sequential.canonical_bytes() == sharded.canonical_bytes()

    def test_unknown_generator_rejected(self):
        with pytest.raises(ValueError, match="unknown generator"):
            run_monte_carlo(samples=1, generator="quantum")

    def test_failed_cases_dump_replayable_traces(self, tmp_path):
        """With trace_dir set, every misclassified fuzz case leaves a
        replayable trace named after its (seed, index)."""
        from repro.trace.recorder import RunTrace
        from repro.trace.replay import replay_trace

        report = run_monte_carlo(
            samples=4, seed=SEED, generator="dag", trace_dir=str(tmp_path)
        )
        failed = [
            o for o in report.outcomes
            if o.harmful != o.detected and "harness_error" not in o.damage_kinds
        ]
        dumped = sorted(tmp_path.glob("fuzz-s*-i*.trace.jsonl"))
        assert len(dumped) == len(failed)
        for path in dumped:
            assert replay_trace(RunTrace.read_jsonl(path)).match
