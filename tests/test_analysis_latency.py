"""Unit tests for the §II-C latency report arithmetic.

The latency-overhead *benchmark* asserts the end-to-end virtual-clock
percentages; these tests pin the :class:`LatencyReport` arithmetic itself
against hand-computed fixtures, so a refactor of the accounting cannot
silently redefine what "overhead per command" or "overhead percent"
means.
"""

import pytest

from repro.analysis.latency import LatencyReport, measure_workflow_latency


class TestLatencyReportArithmetic:
    def test_total_seconds_is_experiment_plus_rabit(self):
        report = LatencyReport(
            configuration="rabit",
            commands=100,
            experiment_seconds=120.0,
            rabit_seconds=3.0,
        )
        assert report.total_seconds == 123.0

    def test_overhead_per_command_hand_computed(self):
        # 3 s of monitor time spread over 100 commands = 0.03 s/command,
        # the paper's no-Extended-Simulator figure.
        report = LatencyReport(
            configuration="rabit",
            commands=100,
            experiment_seconds=120.0,
            rabit_seconds=3.0,
        )
        assert report.overhead_per_command == pytest.approx(0.03)

    def test_overhead_percent_hand_computed(self):
        # 134.4 s of monitor time over a 120 s experiment = 112 %, the
        # paper's Extended-Simulator figure.
        report = LatencyReport(
            configuration="rabit+es",
            commands=100,
            experiment_seconds=120.0,
            rabit_seconds=134.4,
        )
        assert report.overhead_percent == pytest.approx(112.0)

    def test_zero_commands_does_not_divide_by_zero(self):
        report = LatencyReport(
            configuration="empty",
            commands=0,
            experiment_seconds=0.0,
            rabit_seconds=0.0,
        )
        assert report.overhead_per_command == 0.0
        assert report.overhead_percent == 0.0
        assert report.total_seconds == 0.0

    def test_zero_baseline_reports_zero_percent(self):
        # A degenerate run where every second is attributed to RABIT must
        # not raise; percent-of-nothing is defined as 0.
        report = LatencyReport(
            configuration="degenerate",
            commands=5,
            experiment_seconds=0.0,
            rabit_seconds=1.0,
        )
        assert report.overhead_percent == 0.0
        assert report.total_seconds == 1.0
        assert report.overhead_per_command == pytest.approx(0.2)

    def test_unmonitored_report_has_no_overhead(self):
        report = LatencyReport(
            configuration="unmonitored",
            commands=42,
            experiment_seconds=99.5,
            rabit_seconds=0.0,
        )
        assert report.total_seconds == 99.5
        assert report.overhead_per_command == 0.0
        assert report.overhead_percent == 0.0


class TestMeasureWorkflowLatency:
    """Cross-configuration invariants of the full (virtual-clock) run."""

    @pytest.fixture(scope="class")
    def reports(self):
        return measure_workflow_latency()

    def test_all_four_configurations_present(self, reports):
        assert set(reports) == {
            "unmonitored",
            "rabit",
            "rabit+es",
            "rabit+es-headless",
        }

    def test_same_workflow_same_command_count(self, reports):
        counts = {r.commands for r in reports.values()}
        assert len(counts) == 1 and counts.pop() > 0

    def test_experiment_time_identical_across_configurations(self, reports):
        # Monitoring adds overhead; it must not change the experiment's
        # own deterministic device charges.
        times = {r.experiment_seconds for r in reports.values()}
        assert len(times) == 1

    def test_unmonitored_run_charges_no_rabit_time(self, reports):
        assert reports["unmonitored"].rabit_seconds == 0.0

    def test_monitoring_overhead_is_ordered(self, reports):
        # unmonitored < rabit <= headless ES (GUI bypass removes the whole
        # 2 s render charge) < GUI-loop ES.
        assert 0.0 < reports["rabit"].rabit_seconds
        assert (
            reports["rabit"].rabit_seconds
            <= reports["rabit+es-headless"].rabit_seconds
            < reports["rabit+es"].rabit_seconds
        )
