"""The SweepBatcher's watermark boundary, pinned exactly.

Degradation is the service's most delicate trade — a tool-point-only
probe is *weaker* than a full sweep — so the flip must happen at
precisely the advertised point: queue depth ``== high_watermark``
degrades, depth ``== high_watermark - 1`` does not, and a drained queue
recovers to full sweeps immediately.  An off-by-one here either degrades
a service that still had headroom or (worse) runs full-queue inline
probes one slot later than the operator configured.
"""

import asyncio

import pytest

from repro.core.interceptor import resolve_action
from repro.serve.batcher import SweepBatcher
from repro.serve.session import build_guarded_deck, default_serve_options


def _sweep_job():
    """A real prepared sweep job against the hein deck geometry."""
    deck, rabit = build_guarded_deck("hein", {}, None, default_serve_options())
    device = deck.devices["ur3e"]
    call = resolve_action(device, "move_to_location", ("grid_a1_safe",), {})
    job = rabit.trajectory_checker.prepare_sweep(call, rabit.state, rabit.model, True)
    assert job is not None
    return job


def _prefill(batcher, job, count):
    """Park *count* real jobs in the queue without starting the drainer."""
    futures = []
    for _ in range(count):
        future = asyncio.get_running_loop().create_future()
        batcher._queue.put_nowait((job, ("boundary", job.frame, job.exclude), future))
        futures.append(future)
    return futures


def test_depth_below_watermark_stays_full_fidelity():
    async def scenario():
        batcher = SweepBatcher(maxsize=16, high_watermark=3, max_batch=16)
        job = _sweep_job()
        parked = _prefill(batcher, job, 2)  # depth == high_watermark - 1

        # submit() reads the depth synchronously before enqueueing, so
        # letting it run one step *before* the drainer starts pins the
        # decision at exactly depth 2.
        task = asyncio.get_running_loop().create_task(
            batcher.submit(job, ("boundary", job.frame, job.exclude))
        )
        await asyncio.sleep(0)
        assert batcher.queue_depth == 3  # enqueued, not answered inline

        batcher.start()
        problem, degraded = await task
        assert degraded is False
        assert problem is None
        await asyncio.gather(*parked)
        assert batcher.stats["degraded"] == 0
        assert batcher.stats["batched"] == 3
        await batcher.stop()

    asyncio.run(scenario())


def test_depth_at_watermark_degrades_inline():
    async def scenario():
        batcher = SweepBatcher(maxsize=16, high_watermark=3, max_batch=16)
        job = _sweep_job()
        _prefill(batcher, job, 3)  # depth == high_watermark exactly

        problem, degraded = await batcher.submit(
            job, ("boundary", job.frame, job.exclude)
        )
        assert degraded is True
        assert problem is None  # this motion is clear either way
        assert batcher.stats["degraded"] == 1
        assert batcher.queue_depth == 3, "degraded probes never touch the queue"
        await batcher.stop()

    asyncio.run(scenario())


def test_recovery_after_drain_is_immediate():
    async def scenario():
        batcher = SweepBatcher(maxsize=16, high_watermark=3, max_batch=16)
        job = _sweep_job()
        parked = _prefill(batcher, job, 3)

        # At the watermark: degraded.
        _, degraded = await batcher.submit(job, ("boundary", job.frame, job.exclude))
        assert degraded is True

        # Drain, then the very next submit is a full sweep again — the
        # watermark gates on live depth, not on sticky mode.
        batcher.start()
        await asyncio.gather(*parked)
        assert batcher.queue_depth == 0
        _, degraded = await batcher.submit(job, ("boundary", job.frame, job.exclude))
        assert degraded is False
        assert batcher.stats["degraded"] == 1
        await batcher.stop()

    asyncio.run(scenario())


def test_watermark_validation_still_brackets_queue():
    with pytest.raises(ValueError):
        SweepBatcher(maxsize=8, high_watermark=0)
    with pytest.raises(ValueError):
        SweepBatcher(maxsize=8, high_watermark=9)
    # watermark == maxsize is legal: degrade only when completely full.
    assert SweepBatcher(maxsize=8, high_watermark=8).high_watermark == 8
