"""Unit tests for the rulebase, with a small synthetic lab model.

Each rule is exercised in isolation: a minimal state + action that
violates it, and a near-identical pair that does not.
"""

import pytest

from repro.core.actions import ActionCall, ActionLabel
from repro.core.model import DeviceModel, LocationModel, ObstacleModel, RabitLabModel
from repro.core.rulebase import CheckContext, RuleScope, build_default_rulebase
from repro.core.state import LabState
from repro.devices.base import DeviceKind
from repro.geometry.shapes import Cuboid


def tiny_model(reliable: bool = True) -> RabitLabModel:
    model = RabitLabModel("tiny")
    model.reliable_container_tracking = reliable
    model.add_device(
        DeviceModel(
            name="arm", kind=DeviceKind.ROBOT_ARM, class_name="RobotArmDevice",
            frame="arm", gripper_clearance=0.025, held_drop=0.06,
        )
    )
    model.add_device(
        DeviceModel(
            name="doser", kind=DeviceKind.DOSING_SYSTEM, class_name="SolidDosingDevice",
            has_door=True, load_location="doser_in",
        )
    )
    model.add_device(
        DeviceModel(
            name="plate", kind=DeviceKind.ACTION_DEVICE, class_name="Hotplate",
            threshold=120.0, load_location="plate_top",
        )
    )
    model.add_device(
        DeviceModel(
            name="spin", kind=DeviceKind.ACTION_DEVICE, class_name="Centrifuge",
            threshold=6000.0, has_door=True, load_location="spin_slot",
        )
    )
    model.add_device(
        DeviceModel(
            name="v1", kind=DeviceKind.CONTAINER, class_name="Vial",
            capacity_solid_mg=10.0, capacity_liquid_ml=20.0,
        )
    )
    model.add_location(LocationModel("slot", "grid_slot", device="grid"))
    model.add_location(LocationModel("doser_in", "device_interior", device="doser"))
    model.add_location(LocationModel("plate_top", "device_interior", device="plate"))
    model.add_location(LocationModel("spin_slot", "device_interior", device="spin"))
    model.add_obstacle(
        ObstacleModel("grid", frames={"arm": Cuboid((0.2, -0.1, 0), (0.4, 0.1, 0.05), name="grid")})
    )
    model.add_obstacle(
        ObstacleModel(
            "platform",
            frames={"arm": Cuboid((-1, -1, -0.02), (1, 1, 0.03), name="platform")},
            surface=True,
        )
    )
    model.custom_rule_ids = ["C1", "C2", "C3", "C4"]
    return model


def check(state, call, *, reliable=True, held=True, bounds=True, capacity=True):
    model = tiny_model(reliable=reliable)
    rulebase = build_default_rulebase(model.custom_rule_ids)
    ctx = CheckContext(
        state=state,
        call=call,
        model=model,
        account_held_objects=held,
        enforce_workspace_bounds=bounds,
        enforce_capacity=capacity,
    )
    hit = rulebase.check_action(ctx)
    return hit[0].rule_id if hit else None


class TestRulebaseStructure:
    def test_rule_counts(self):
        rulebase = build_default_rulebase(["C1", "C2", "C3", "C4"])
        assert len(rulebase.rules(RuleScope.GENERAL)) == 11
        assert len(rulebase.rules(RuleScope.CUSTOM)) == 4
        assert len(rulebase.rules(RuleScope.ACTION)) == 1

    def test_custom_rules_opt_in(self):
        rulebase = build_default_rulebase([])
        assert len(rulebase.rules(RuleScope.CUSTOM)) == 0
        rulebase = build_default_rulebase(["C3"])
        assert [r.rule_id for r in rulebase.rules(RuleScope.CUSTOM)] == ["C3"]

    def test_duplicate_rule_rejected(self):
        rulebase = build_default_rulebase([])
        with pytest.raises(ValueError, match="duplicate"):
            rulebase.add(rulebase.get("G1"))

    def test_descriptions_match_paper_wording(self):
        rulebase = build_default_rulebase([])
        assert "door is closed" in rulebase.get("G1").description
        assert "predefined threshold" in rulebase.get("G11").description


class TestG1DoorBeforeEntry:
    def test_violation_when_closed(self):
        state = LabState()
        state.set("door_status", "doser", "closed")
        call = ActionCall(ActionLabel.MOVE_ROBOT_INSIDE, "arm", robot="arm", location="doser_in")
        assert check(state, call) == "G1"

    def test_ok_when_open(self):
        state = LabState()
        state.set("door_status", "doser", "open")
        call = ActionCall(ActionLabel.MOVE_ROBOT_INSIDE, "arm", robot="arm", location="doser_in")
        assert check(state, call) is None

    def test_doorless_interior_exempt(self):
        call = ActionCall(ActionLabel.MOVE_ROBOT_INSIDE, "arm", robot="arm", location="plate_top")
        assert check(LabState(), call) is None


class TestG2CloseDoor:
    def test_violation_with_robot_inside(self):
        state = LabState()
        state.set("robot_inside", "arm", "doser")
        assert check(state, ActionCall(ActionLabel.CLOSE_DOOR, "doser")) == "G2"

    def test_ok_when_empty(self):
        state = LabState()
        state.set("robot_inside", "arm", None)
        assert check(state, ActionCall(ActionLabel.CLOSE_DOOR, "doser")) is None


class TestG3Collisions:
    def test_target_inside_obstacle(self):
        call = ActionCall(
            ActionLabel.MOVE_ROBOT, "arm", robot="arm", target=(0.3, 0.0, 0.02)
        )
        assert check(LabState(), call) == "G3"

    def test_gripper_tip_probe_hits_surface(self):
        # Target above the slab, but the gripper tip dips into it.
        call = ActionCall(
            ActionLabel.MOVE_ROBOT, "arm", robot="arm", target=(0.6, 0.5, 0.04)
        )
        assert check(LabState(), call) == "G3"

    def test_clear_target_passes(self):
        call = ActionCall(
            ActionLabel.MOVE_ROBOT, "arm", robot="arm", target=(0.6, 0.5, 0.2)
        )
        assert check(LabState(), call) is None

    def test_held_vial_probe_requires_flag(self):
        state = LabState()
        state.set("robot_holding", "arm", "v1")
        # Vial tip (6 cm below) would dip into the platform slab.
        call = ActionCall(
            ActionLabel.MOVE_ROBOT, "arm", robot="arm", target=(0.6, 0.5, 0.08)
        )
        assert check(state, call, held=True) == "G3"
        assert check(state, call, held=False) is None

    def test_place_onto_occupied_location(self):
        state = LabState()
        state.set("robot_holding", "arm", "v1")
        state.set("container_at", "v2", "slot")
        call = ActionCall(
            ActionLabel.PLACE_OBJECT, "arm", robot="arm", location="slot"
        )
        assert check(state, call) == "G3"

    def test_move_to_occupied_location_allowed(self):
        # Staging at an occupied slot is how every pick begins.
        state = LabState()
        state.set("container_at", "v2", "slot")
        call = ActionCall(ActionLabel.MOVE_ROBOT, "arm", robot="arm", location="slot")
        assert check(state, call) is None

    def test_workspace_bounds_only_when_enforced(self):
        model_bounds = Cuboid((-0.5, -0.5, 0.0), (0.5, 0.5, 0.5), name="ws")
        state = LabState()
        call = ActionCall(
            ActionLabel.MOVE_ROBOT, "arm", robot="arm", target=(0.7, 0.0, 0.2)
        )
        model = tiny_model()
        model.workspace_bounds["arm"] = model_bounds
        rulebase = build_default_rulebase([])
        from repro.core.rulebase import CheckContext

        for enforce, expected in ((True, "G3"), (False, None)):
            ctx = CheckContext(
                state=state, call=call, model=model,
                enforce_workspace_bounds=enforce,
            )
            hit = rulebase.check_action(ctx)
            assert (hit[0].rule_id if hit else None) == expected


class TestG4Pick:
    def test_violation_when_already_holding(self):
        state = LabState()
        state.set("robot_holding", "arm", "v1")
        call = ActionCall(ActionLabel.PICK_OBJECT, "arm", robot="arm", location="slot")
        assert check(state, call) == "G4"

    def test_applies_to_raw_close_gripper(self):
        state = LabState()
        state.set("robot_holding", "arm", "v1")
        call = ActionCall(ActionLabel.CLOSE_GRIPPER, "arm", robot="arm")
        assert check(state, call) == "G4"


class TestG5G6Container:
    def test_g5_requires_container_when_tracking_reliable(self):
        call = ActionCall(ActionLabel.START_ACTION, "plate", value=60.0)
        assert check(LabState(), call, reliable=True) == "G5"
        # On unreliable-tracking labs the same situation passes silently.
        assert check(LabState(), call, reliable=False) is None

    def test_g6_empty_container(self):
        state = LabState()
        state.set("container_at", "v1", "plate_top")
        state.set("container_solid", "v1", 0.0)
        call = ActionCall(ActionLabel.START_ACTION, "plate", value=60.0)
        assert check(state, call, reliable=True) == "G6"

    def test_loaded_and_filled_passes(self):
        state = LabState()
        state.set("container_at", "v1", "plate_top")
        state.set("container_solid", "v1", 5.0)
        call = ActionCall(ActionLabel.START_ACTION, "plate", value=60.0)
        assert check(state, call) is None


class TestG7G8Transfer:
    def _dosing_state(self, stopper="off", solid=0.0):
        state = LabState()
        state.set("container_at", "v1", "doser_in")
        state.set("container_stopper", "v1", stopper)
        state.set("container_solid", "v1", solid)
        state.set("door_status", "doser", "closed")
        return state

    def test_g7_stopper_blocks_transfer(self):
        call = ActionCall(ActionLabel.START_DOSING, "doser", quantity=5.0)
        assert check(self._dosing_state(stopper="on"), call) == "G7"

    def test_g8_capacity(self):
        call = ActionCall(ActionLabel.START_DOSING, "doser", quantity=15.0)
        assert check(self._dosing_state(), call, capacity=True) == "G8"
        assert check(self._dosing_state(), call, capacity=False) is None

    def test_g8_partial_fill_accounts_belief(self):
        call = ActionCall(ActionLabel.START_DOSING, "doser", quantity=6.0)
        assert check(self._dosing_state(solid=5.0), call) == "G8"
        assert check(self._dosing_state(solid=3.0), call) is None


class TestG9G10Doors:
    def test_g9_door_must_be_closed_to_run(self):
        state = LabState()
        state.set("door_status", "doser", "open")
        call = ActionCall(ActionLabel.START_DOSING, "doser", quantity=2.0)
        assert check(state, call, reliable=False) == "G9"

    def test_g10_no_open_while_running(self):
        state = LabState()
        state.set("device_active", "doser", True)
        assert check(state, ActionCall(ActionLabel.OPEN_DOOR, "doser")) == "G10"
        state.set("device_active", "doser", False)
        assert check(state, ActionCall(ActionLabel.OPEN_DOOR, "doser")) is None


class TestG11Threshold:
    def test_over_threshold(self):
        state = LabState()
        state.set("container_at", "v1", "plate_top")
        state.set("container_solid", "v1", 5.0)
        call = ActionCall(ActionLabel.START_ACTION, "plate", value=200.0)
        assert check(state, call) == "G11"

    def test_set_value_also_guarded(self):
        call = ActionCall(ActionLabel.SET_ACTION_VALUE, "plate", value=150.0)
        assert check(LabState(), call) == "G11"

    def test_at_threshold_passes(self):
        call = ActionCall(ActionLabel.SET_ACTION_VALUE, "plate", value=120.0)
        assert check(LabState(), call) is None


class TestCustomRules:
    def _holding_state(self, solid=5.0, liquid=5.0, stopper="on", red_dot="N"):
        state = LabState()
        state.set("robot_holding", "arm", "v1")
        state.set("container_solid", "v1", solid)
        state.set("container_liquid", "v1", liquid)
        state.set("container_stopper", "v1", stopper)
        state.set("red_dot", "spin", red_dot)
        state.set("door_status", "spin", "open")
        return state

    def _place_call(self):
        return ActionCall(
            ActionLabel.PLACE_OBJECT, "arm", robot="arm", location="spin_slot"
        )

    def test_c1_liquid_needs_solid(self):
        state = LabState()
        state.set("container_at", "v1", "plate_top")
        state.set("container_solid", "v1", 0.0)
        call = ActionCall(ActionLabel.DOSE_LIQUID, "plate", quantity=2.0)
        # C1 is registered for dosing systems; use the pump-like device.
        call = ActionCall(ActionLabel.DOSE_LIQUID, "plate", quantity=2.0)
        assert check(state, call) == "C1"

    def test_c2_needs_both_phases(self):
        assert check(self._holding_state(liquid=0.0), self._place_call()) == "C2"

    def test_c3_red_dot_north(self):
        assert check(self._holding_state(red_dot="S"), self._place_call()) == "C3"

    def test_c4_stopper_on(self):
        assert check(self._holding_state(stopper="off"), self._place_call()) == "C4"

    def test_compliant_place_passes(self):
        assert check(self._holding_state(), self._place_call()) is None

    def test_custom_rules_ignore_non_centrifuge(self):
        state = self._holding_state(liquid=0.0, stopper="off")
        call = ActionCall(
            ActionLabel.PLACE_OBJECT, "arm", robot="arm", location="plate_top"
        )
        assert check(state, call) is None


class TestTablePreconditions:
    def test_place_requires_holding(self):
        call = ActionCall(ActionLabel.PLACE_OBJECT, "arm", robot="arm", location="slot")
        assert check(LabState(), call) == "T2-place"

    def test_raw_open_gripper_exempt(self):
        call = ActionCall(ActionLabel.OPEN_GRIPPER, "arm", robot="arm", location="slot")
        assert check(LabState(), call) is None
