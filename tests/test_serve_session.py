"""Multi-session guard service: isolation, sharing, and admission.

The service's contract is asymmetric sharing: sessions share the
tenant's rulebase (hence one compiled dispatch snapshot) and the sweep
batcher, and share *nothing else* — LabState, rule-verdict cache,
virtual clock, and journal are strictly per session.  These tests pin
both directions: conflicting door states never cross-contaminate
verdicts, while the rulebase object graph really is one instance per
tenant (with overlays biting only their own tenant's sessions).
"""

import asyncio
import os
import tempfile

import pytest

from repro.core.actions import ActionLabel
from repro.core.rulebase import Rule, RuleScope
from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import read_message
from repro.serve.server import GuardServer


def serve_test(coro_fn, **server_kwargs):
    """Run *coro_fn(server, path)* against a live unix-socket service."""

    async def main():
        server = GuardServer(**server_kwargs)
        path = os.path.join(tempfile.mkdtemp(prefix="rabit-serve-test-"), "g.sock")
        await server.start_unix(path)
        try:
            return await coro_fn(server, path)
        finally:
            await server.stop()

    return asyncio.run(main())


async def open_client(path, **open_kwargs):
    client = await ServeClient.open_unix(path)
    await client.open_session(**open_kwargs)
    return client


# -- isolation ---------------------------------------------------------------


def test_conflicting_door_states_never_cross_contaminate():
    async def scenario(server, path):
        a = await open_client(path, deck="hein")
        b = await open_client(path, deck="hein")

        # Session A opens the dosing device's door; session B does not.
        opened = await a.command("dosing_device", "open_door")
        assert opened["ok"] and opened["alert"] is None

        # A may enter; B's identical command must be blocked by G1.
        enter_a = await a.command("ur3e", "move_to_location", "dosing_interior")
        assert enter_a["ok"] and enter_a["alert"] is None

        enter_b = await b.command("ur3e", "move_to_location", "dosing_interior")
        assert not enter_b["ok"]
        assert enter_b["alert"]["rule_id"] == "G1"
        assert "door" in enter_b["alert"]["message"]

        # And the contamination cannot run the other way either: B now
        # opens its own door and enters fine, while A — whose arm is
        # inside — still cannot close its door (G2).
        await b.command("dosing_device", "open_door")
        enter_b2 = await b.command("ur3e", "move_to_location", "dosing_interior")
        assert enter_b2["ok"], enter_b2

        close_a = await a.command("dosing_device", "close_door")
        assert not close_a["ok"]
        assert close_a["alert"]["rule_id"] == "G2"

        # Journals stayed strictly per-session.
        journal_a = await a.journal()
        journal_b = await b.journal()
        assert len(journal_a) == 3
        assert len(journal_b) == 3
        assert [e["alert"] is None for e in journal_a] == [True, True, False]
        assert [e["alert"] is None for e in journal_b] == [False, True, True]

        await a.close()
        await b.close()

    serve_test(scenario)


def test_sessions_have_private_clocks_and_caches():
    async def scenario(server, path):
        a = await open_client(path, deck="hein")
        b = await open_client(path, deck="hein")
        # The first go-home moves the believed arm pose (new fingerprint,
        # miss), the second re-checks the now-stable home state (miss —
        # first sight of that fingerprint), and the third finally hits.
        await a.command("ur3e", "go_to_home_pose")
        await a.command("ur3e", "go_to_home_pose")
        await a.command("ur3e", "go_to_home_pose")
        first_b = await b.command("ur3e", "go_to_home_pose")

        session_a, session_b = server.sessions[1], server.sessions[2]
        assert session_a.clock is not session_b.clock
        assert session_a.clock.now > session_b.clock.now

        # A's third identical command hit its own cache; B's first
        # identical command was still a miss — a shared cache would have
        # leaked A's verdict into B.
        assert (await a.journal())[2]["rule_cache"] == "hit"
        assert first_b["rule_cache"] == "miss"
        assert session_a.rabit.rule_cache is not session_b.rabit.rule_cache

        await a.close()
        await b.close()

    serve_test(scenario)


# -- rulebase sharing and tenant overlays ------------------------------------


def test_same_tenant_sessions_share_one_compiled_rulebase():
    async def scenario(server, path):
        a = await open_client(path, deck="hein")
        b = await open_client(path, deck="hein")
        c = await open_client(path, deck="hein", tenant="other")

        rb_a = server.sessions[1].rabit.rulebase
        rb_b = server.sessions[2].rabit.rulebase
        rb_c = server.sessions[3].rabit.rulebase
        assert rb_a is rb_b, "same tenant must share the RuleBase instance"
        assert rb_a.compiled() is rb_b.compiled(), (
            "the compiled snapshot must be memoized once per tenant revision"
        )
        assert rb_c is not rb_a, "tenants must not share rulebase instances"

        await a.close()
        await b.close()
        await c.close()

    serve_test(scenario)


def test_tenant_overlay_blocks_only_its_own_sessions():
    overlay = Rule(
        "T1",
        RuleScope.CUSTOM,
        "Tenant policy: the home pose is reserved for maintenance",
        frozenset({ActionLabel.GO_HOME}),
        lambda ctx: "tenant policy forbids the home pose",
    )

    async def scenario(server, path):
        server.tenants.add_overlay("strict", overlay)
        strict = await open_client(path, deck="hein", tenant="strict")
        plain = await open_client(path, deck="hein")

        blocked = await strict.command("ur3e", "go_to_home_pose")
        assert not blocked["ok"]
        assert blocked["alert"]["rule_id"] == "T1"
        assert blocked["alert"]["message"] == "tenant policy forbids the home pose"

        allowed = await plain.command("ur3e", "go_to_home_pose")
        assert allowed["ok"] and allowed["alert"] is None

        # Late overlays propagate to already-open sessions of the tenant
        # (the shared instance recompiles on its next revision).
        late = Rule(
            "T2",
            RuleScope.CUSTOM,
            "Tenant policy: no sleep pose either",
            frozenset({ActionLabel.GO_SLEEP}),
            lambda ctx: "tenant policy forbids the sleep pose",
        )
        server.tenants.add_overlay("strict", late)
        blocked_late = await strict.command("ur3e", "go_to_sleep_pose")
        assert not blocked_late["ok"]
        assert blocked_late["alert"]["rule_id"] == "T2"
        assert (await plain.command("ur3e", "go_to_sleep_pose"))["ok"]

        await strict.close()
        await plain.close()

    serve_test(scenario)


# -- admission and request errors --------------------------------------------


def test_session_cap_rejects_explicitly():
    async def scenario(server, path):
        first = await open_client(path, deck="hein_lean")
        second = await ServeClient.open_unix(path)
        with pytest.raises(ServeError, match="session limit"):
            await second.open_session(deck="hein_lean")
        assert server.stats["sessions_rejected"] == 1
        # The connection survives the rejection; closing A frees the slot.
        await first.close()
        await asyncio.sleep(0.05)  # let the server finish A's teardown
        assert await second.open_session(deck="hein_lean") >= 1
        await second.close()

    serve_test(scenario, max_sessions=1)


def test_request_errors_are_answered_not_fatal():
    async def scenario(server, path):
        client = await ServeClient.open_unix(path)
        with pytest.raises(ServeError, match="no session open"):
            await client.command("ur3e", "go_to_home_pose")
        with pytest.raises(ServeError, match="unknown deck"):
            await client.open_session(deck="nope")
        with pytest.raises(ServeError, match="unknown op"):
            await client.request({"op": "frobnicate"})

        # The same connection can still open a real session afterwards.
        await client.open_session(deck="hein_lean")
        with pytest.raises(ServeError, match="unknown device"):
            await client.command("warp_drive", "engage")
        with pytest.raises(ServeError, match="already open"):
            await client.open_session(deck="hein_lean")
        ok = await client.command("ur3e", "go_to_home_pose")
        assert ok["ok"]
        await client.close()

    serve_test(scenario)


def test_protocol_garbage_gets_error_frame_then_close():
    async def scenario(server, path):
        reader, writer = await asyncio.open_unix_connection(path)
        writer.write(b"this is not json\n")
        await writer.drain()
        response = await read_message(reader)
        assert response is not None
        assert response["ok"] is False
        assert "JSON" in response["error"] or "json" in response["error"]
        assert await reader.read() == b""  # server hung up
        writer.close()
        assert server.stats["protocol_errors"] == 1

    serve_test(scenario)


def test_unmodeled_methods_pass_through_untraced():
    async def scenario(server, path):
        client = await open_client(path, deck="hein_lean")
        response = await client.command("ur3e", "status")
        assert response["ok"] and response["traced"] is False
        assert (await client.journal()) == []
        await client.close()

    serve_test(scenario)


def test_server_snapshot_reports_batcher_stats():
    async def scenario(server, path):
        client = await open_client(path, deck="hein_lean")
        await client.command("ur3e", "move_to_location", "grid_a1_safe")
        stats = await client.stats()
        assert stats["sessions_open"] == 1
        assert stats["commands"] == 1
        assert stats["sweeps"]["submitted"] >= 1
        assert stats["sweeps"]["degraded"] == 0
        await client.close()

    serve_test(scenario)
