"""Smoke tests: the shipped examples must run and print their headlines.

Only the fast examples run here (the campaign and Monte Carlo examples
take minutes and are exercised through their underlying APIs elsewhere).
"""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestFastExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "RABIT stopped the experiment" in out
        assert "[G1]" in out
        assert "Ground-truth damage events: 0" in out
        assert "top-down" in out  # deck rendering

    def test_failsafe_and_sensors(self):
        out = run_example("failsafe_and_sensors.py")
        assert "recovery: ur3e: set vial down at grid_a1 -> ok" in out
        assert "[S1]" in out
        assert "person left: motion resumes" in out

    def test_solubility_experiment(self):
        out = run_example("solubility_experiment.py")
        assert "completed: True" in out
        assert "RABIT alerts: 0" in out
        assert "5 mg solid" in out
