"""Edge-case coverage across small public APIs."""

import pytest

from repro.core.actions import ActionLabel, TransitionTable
from repro.core.clock import VirtualClock
from repro.core.model import DeviceModel, ObstacleModel, RabitLabModel
from repro.core.rulebase import build_default_rulebase
from repro.devices.base import DeviceKind
from repro.geometry.shapes import Cuboid


class TestVirtualClock:
    def test_advance_and_breakdown(self):
        clock = VirtualClock()
        clock.advance(1.0, "a")
        clock.advance(2.0, "b")
        clock.advance(0.5, "a")
        assert clock.now == pytest.approx(3.5)
        assert clock.breakdown() == {"a": 1.5, "b": 2.0}
        assert clock.spent("missing") == 0.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError, match="backwards"):
            VirtualClock().advance(-1.0)

    def test_reset(self):
        clock = VirtualClock()
        clock.advance(5.0, "x")
        clock.reset()
        assert clock.now == 0.0 and clock.breakdown() == {}


class TestModelRegistry:
    def _model(self):
        model = RabitLabModel("m")
        model.add_device(
            DeviceModel("arm", DeviceKind.ROBOT_ARM, "RobotArmDevice", frame="arm")
        )
        return model

    def test_duplicate_device_rejected(self):
        model = self._model()
        with pytest.raises(ValueError, match="duplicate device"):
            model.add_device(
                DeviceModel("arm", DeviceKind.ROBOT_ARM, "RobotArmDevice")
            )

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError, match="not in configuration"):
            self._model().device("ghost")

    def test_remove_obstacle_is_idempotent(self):
        model = self._model()
        model.add_obstacle(
            ObstacleModel("box", frames={"arm": Cuboid((0, 0, 0), (1, 1, 1))})
        )
        model.remove_obstacle("box")
        model.remove_obstacle("box")  # no error
        assert model.obstacles_for_frame("arm") == []

    def test_obstacles_filtered_by_frame(self):
        model = self._model()
        model.add_obstacle(
            ObstacleModel("box", frames={"other": Cuboid((0, 0, 0), (1, 1, 1))})
        )
        assert model.obstacles_for_frame("arm") == []
        assert len(model.obstacles_for_frame("other")) == 1

    def test_interior_owner_of_unknown_location(self):
        assert self._model().interior_owner("nowhere") is None

    def test_load_location_of_unknown_device(self):
        assert self._model().load_location("ghost") is None


class TestRuleBaseApi:
    def test_get_unknown_rule(self):
        with pytest.raises(KeyError, match="unknown rule"):
            build_default_rulebase([]).get("G99")

    def test_exclude_filters(self):
        rulebase = build_default_rulebase([], exclude=("G1", "G3"))
        ids = {r.rule_id for r in rulebase.rules()}
        assert "G1" not in ids and "G3" not in ids and "G2" in ids

    def test_unknown_custom_ids_ignored(self):
        rulebase = build_default_rulebase(["C1", "C99"])
        ids = {r.rule_id for r in rulebase.rules()}
        assert "C1" in ids and "C99" not in ids


class TestProxyKwargs:
    def test_move_accepts_keyword_ref(self):
        from repro.lab.hein import build_hein_deck, make_hein_rabit

        deck = build_hein_deck()
        rabit, proxies, trace = make_hein_rabit(deck)
        proxies["ur3e"].move_to_location(ref="grid_a1_safe")
        assert trace[-1].location == "grid_a1_safe"

    def test_dosing_keyword_quantity(self):
        from repro.core.errors import SafetyViolation
        from repro.lab.hein import build_hein_deck, make_hein_rabit

        deck = build_hein_deck()
        rabit, proxies, trace = make_hein_rabit(deck)
        # Door open -> G9 veto proves the kwargs-resolved quantity went
        # through the full guard path.
        proxies["dosing_device"].open_door()
        with pytest.raises(SafetyViolation):
            proxies["dosing_device"].run_action(delay=1, quantity=3.0)
        assert trace[-1].label is ActionLabel.START_DOSING


class TestTransitionTableApi:
    def test_unknown_label_raises(self):
        table = TransitionTable()

        class FakeLabel:
            pass

        with pytest.raises(KeyError, match="no transition row"):
            table.row(FakeLabel())
