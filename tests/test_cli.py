"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import main
from repro.lab.hein import build_hein_deck


@pytest.fixture()
def config_file(tmp_path):
    path = tmp_path / "hein.json"
    path.write_text(json.dumps(build_hein_deck().config))
    return path


class TestValidate:
    def test_valid_config_exits_zero(self, config_file, capsys):
        assert main(["validate", str(config_file)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_invalid_config_exits_one(self, tmp_path, capsys):
        config = build_hein_deck().config
        config["devices"][0]["type"] = "teleporter"
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(config))
        assert main(["validate", str(path)]) == 1
        assert "unknown device type" in capsys.readouterr().out

    def test_syntax_error_exits_one(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text('{"devices": [,]}')
        assert main(["validate", str(path)]) == 1
        assert "JSON syntax error" in capsys.readouterr().out

    def test_missing_file_exits_two(self, capsys):
        assert main(["validate", "/nonexistent/lab.json"]) == 2


class TestScenarios:
    def test_subset_of_rules(self, capsys):
        assert main(["scenarios", "--rules", "G1,G11"]) == 0
        out = capsys.readouterr().out
        assert "G1" in out and "G11" in out and "detected" in out
        assert "G5" not in out


class TestCalibration:
    def test_prints_residual(self, capsys):
        assert main(["calibration"]) == 0
        assert "mean residual" in capsys.readouterr().out


class TestLatency:
    def test_prints_overheads(self, capsys):
        assert main(["latency"]) == 0
        out = capsys.readouterr().out
        assert "rabit+es" in out and "overhead" in out


class TestMine:
    def test_mines_and_writes_jsonl(self, tmp_path, capsys):
        out_path = tmp_path / "traces.jsonl"
        code = main(
            ["mine", "--hein", "3", "--berlinguette", "3", "--out", str(out_path)]
        )
        assert code == 0
        assert out_path.exists()
        out = capsys.readouterr().out
        assert "door of" in out  # mined door invariant
        assert "classified rules total" in out


class TestCampaign:
    def test_single_config_campaign(self, capsys):
        # Run only the initial configuration to keep the CLI test fast.
        assert main(["campaign", "--configs", "initial"]) == 0
        out = capsys.readouterr().out
        assert "8/16" in out and "50 %" in out
        assert "match the paper" in out


class TestRender:
    def test_renders_each_lab(self, capsys):
        for lab in ("hein", "testbed", "berlinguette"):
            assert main(["render", "--lab", lab]) == 0
        out = capsys.readouterr().out
        assert "top-down" in out and "dosing_device" in out

    def test_testbed_renders_both_frames(self, capsys):
        assert main(["render", "--lab", "testbed"]) == 0
        out = capsys.readouterr().out
        assert "frame 'viperx'" in out and "frame 'ned2'" in out
