"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import main
from repro.lab.hein import build_hein_deck


@pytest.fixture()
def config_file(tmp_path):
    path = tmp_path / "hein.json"
    path.write_text(json.dumps(build_hein_deck().config))
    return path


class TestValidate:
    def test_valid_config_exits_zero(self, config_file, capsys):
        assert main(["validate", str(config_file)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_invalid_config_exits_one(self, tmp_path, capsys):
        config = build_hein_deck().config
        config["devices"][0]["type"] = "teleporter"
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(config))
        assert main(["validate", str(path)]) == 1
        assert "unknown device type" in capsys.readouterr().out

    def test_syntax_error_exits_one(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text('{"devices": [,]}')
        assert main(["validate", str(path)]) == 1
        assert "JSON syntax error" in capsys.readouterr().out

    def test_missing_file_exits_two(self, capsys):
        assert main(["validate", "/nonexistent/lab.json"]) == 2


class TestScenarios:
    def test_subset_of_rules(self, capsys):
        assert main(["scenarios", "--rules", "G1,G11"]) == 0
        out = capsys.readouterr().out
        assert "G1" in out and "G11" in out and "detected" in out
        assert "G5" not in out


class TestCalibration:
    def test_prints_residual(self, capsys):
        assert main(["calibration"]) == 0
        assert "mean residual" in capsys.readouterr().out


class TestLatency:
    def test_prints_overheads(self, capsys):
        assert main(["latency"]) == 0
        out = capsys.readouterr().out
        assert "rabit+es" in out and "overhead" in out


class TestMine:
    def test_mines_and_writes_jsonl(self, tmp_path, capsys):
        out_path = tmp_path / "traces.jsonl"
        code = main(
            ["mine", "--hein", "3", "--berlinguette", "3", "--out", str(out_path)]
        )
        assert code == 0
        assert out_path.exists()
        out = capsys.readouterr().out
        assert "door of" in out  # mined door invariant
        assert "classified rules total" in out


class TestCampaign:
    def test_single_config_campaign(self, capsys):
        # Run only the initial configuration to keep the CLI test fast.
        assert main(["campaign", "--configs", "initial"]) == 0
        out = capsys.readouterr().out
        assert "8/16" in out and "50 %" in out
        assert "match the paper" in out


class TestMonteCarlo:
    def test_small_sweep_with_jsonl_export(self, tmp_path, capsys):
        # Two mutants keep the CLI test fast (each is two full runs);
        # seed 30's first two are a Bug-C-class miss and a caught spill.
        jsonl = tmp_path / "mutants.jsonl"
        code = main(
            ["montecarlo", "--samples", "2", "--seed", "30",
             "--jsonl", str(jsonl)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Monte Carlo bug study" in out
        assert "sampled mutants" in out and "false alarms" in out
        assert "Missed mutants:" in out and "delete pick_grid" in out

        rows = [json.loads(line) for line in jsonl.read_text().splitlines()]
        assert [r["index"] for r in rows] == [0, 1]
        assert rows[0]["description"] == "delete pick_grid"
        assert rows[0]["classification"] == "false_negative"
        assert rows[1]["classification"] == "true_positive"
        assert all(
            set(r) == {"index", "description", "harmful", "detected",
                       "damage_kinds", "classification"}
            for r in rows
        )


class TestMetrics:
    def test_solubility_workload_exports_trace_and_prometheus(self, tmp_path, capsys):
        from repro.obs import OBS

        trace_out = tmp_path / "trace.jsonl"
        prom_out = tmp_path / "metrics.prom"
        json_out = tmp_path / "metrics.json"
        code = main(
            [
                "metrics",
                "--workload", "solubility",
                "--trace-out", str(trace_out),
                "--prom-out", str(prom_out),
                "--json-out", str(json_out),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Observability summary" in out
        assert "commands intercepted" in out
        assert "Hottest spans" in out

        # The JSONL trace parses and contains nested guard spans.
        docs = [json.loads(line) for line in trace_out.read_text().splitlines()]
        assert docs, "empty span trace"
        names = {d["name"] for d in docs}
        assert {"intercept.command", "rabit.guard", "es.validate_trajectory"} <= names
        assert all("start_wall" in d and "attributes" in d for d in docs)
        # Virtual-clock stamps arrive once the workload binds its clock.
        assert any(d["start_virtual"] is not None for d in docs)

        # The Prometheus dump covers interceptor, rule cache, and sweeps.
        prom = prom_out.read_text()
        for needle in (
            "# TYPE rabit_commands_intercepted_total counter",
            "rabit_rule_cache_lookups_total{",
            'es_trajectory_checks_total{path="batch"}',
            "geometry_pair_checks_total",
            "rabit_guard_wall_seconds_bucket",
        ):
            assert needle in prom, needle

        snapshot = json.loads(json_out.read_text())
        assert "rabit_commands_intercepted_total" in snapshot["counters"]

        # The CLI leaves the global runtime off and empty.
        assert not OBS.enabled
        assert OBS.collector.recorded == 0

    def test_scenarios_workload(self, tmp_path, capsys):
        code = main(
            [
                "metrics",
                "--workload", "scenarios",
                "--trace-out", str(tmp_path / "t.jsonl"),
                "--prom-out", str(tmp_path / "m.prom"),
            ]
        )
        assert code == 0
        prom = (tmp_path / "m.prom").read_text()
        assert "rabit_alerts_total{" in prom  # violations fired alerts
        out = capsys.readouterr().out
        assert "scenarios (15 units)" in out


class TestRender:
    def test_renders_each_lab(self, capsys):
        for lab in ("hein", "testbed", "berlinguette"):
            assert main(["render", "--lab", lab]) == 0
        out = capsys.readouterr().out
        assert "top-down" in out and "dosing_device" in out

    def test_testbed_renders_both_frames(self, capsys):
        assert main(["render", "--lab", "testbed"]) == 0
        out = capsys.readouterr().out
        assert "frame 'viperx'" in out and "frame 'ned2'" in out
