"""The shared canonical-JSON witness: exact bytes, pinned.

``repro.trace.canon`` is the single serialization every equality witness
in the repo rides on — run traces, the sharded-vs-sequential
differential reports, and the latency report.  Its output must be
stable across CPython versions and platforms, so this suite pins exact
bytes: dict ordering (insertion order must not leak), float formatting
(shortest-roundtrip ``repr``, stable since CPython 3.1), ASCII escaping,
and NaN/Infinity rejection.  The aggregate ``canonical_bytes``
implementations are checked to actually route through the shared
helper's format (compact separators, sorted keys).
"""

import math

import pytest

from repro.trace.canon import canonical_bytes, canonical_json, content_digest


def test_dict_ordering_does_not_leak_into_bytes():
    a = {"b": 1, "a": {"y": 2, "x": 3}}
    b = {"a": {"x": 3, "y": 2}, "b": 1}
    assert canonical_bytes(a) == canonical_bytes(b)
    assert canonical_bytes(a) == b'{"a":{"x":3,"y":2},"b":1}'


def test_exact_bytes_are_pinned_cross_version():
    """The full format in one witness value: sorted keys, compact
    separators, ASCII escapes, shortest-roundtrip floats."""
    value = {
        "z": [1, 2.5, True, None],
        "a": 0.1,
        "third": 1e16,
        "neg": -0.0,
        "unicode": "vial µL",
        "small": 5e-324,
    }
    assert canonical_json(value) == (
        '{"a":0.1,"neg":-0.0,"small":5e-324,"third":1e+16,'
        '"unicode":"vial \\u00b5L","z":[1,2.5,true,null]}'
    )
    assert content_digest(value) == content_digest(dict(reversed(list(value.items()))))


def test_float_repr_round_trips():
    for value in (0.1, 1.5319999999999996, 2 / 3, 1e-9, 123456.789):
        import json

        assert json.loads(canonical_json(value)) == value


def test_non_finite_floats_are_rejected():
    for bad in (math.nan, math.inf, -math.inf):
        with pytest.raises(ValueError):
            canonical_json({"value": bad})


def test_content_digest_is_pinned():
    assert content_digest({"workload": "solubility"}) == content_digest(
        {"workload": "solubility"}
    )
    assert content_digest({}) == "44136fa355b3678a"  # sha256 of b"{}"
    assert len(content_digest({}, length=8)) == 8


def test_report_witnesses_use_the_shared_format():
    """MonteCarloReport / CampaignResult / LatencyReport canonical bytes
    are compact-separator, sorted-key canon output, not legacy
    ``json.dumps`` defaults (which padded separators)."""
    from repro.analysis.latency import LatencyReport
    from repro.faults.campaign import CampaignResult
    from repro.faults.montecarlo import MonteCarloReport, MutantOutcome

    latency = LatencyReport(
        configuration="rabit", commands=10, experiment_seconds=2.0, rabit_seconds=0.3
    )
    assert latency.canonical_bytes() == canonical_bytes(latency.as_dict())
    assert b": " not in latency.canonical_bytes()

    outcome = MutantOutcome(
        seed=0, description="delete x", harmful=True, detected=True,
        damage_kinds=("collision",),
    )
    report = MonteCarloReport(outcomes=[outcome])
    assert report.canonical_bytes() == canonical_bytes([outcome.as_dict()])

    assert CampaignResult().canonical_bytes() == b"[]"
