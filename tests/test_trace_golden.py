"""Golden-trace regression corpus: committed traces must replay byte-identically.

The fixtures under ``tests/fixtures/traces/`` were recorded with seed-2024
parameters and committed; any change to the guarded-execution pipeline
that alters a verdict, a state delta, a timestamp, a trajectory sweep,
or a span id shows up here as a byte-level divergence with a first-diff
report.  The corpus covers the three scenario families the issue asks
for: the production solubility workflow (with observability
cross-links), a fault-campaign failure (Bug A under modified RABIT),
and the §V-C multi-door simultaneous-access scenario.
"""

from pathlib import Path

import pytest

from repro.trace import TRACE, RunTrace, SCHEMA_VERSION
from repro.trace.replay import replay_trace

FIXTURES = Path(__file__).parent / "fixtures" / "traces"

GOLDEN = [
    ("solubility-2024.trace.jsonl", "solubility", 45),
    ("bug-H1-modified.trace.jsonl", "bug", 20),
    ("multi-door-2024.trace.jsonl", "multi_door", 14),
]


def test_recording_is_default_off():
    assert TRACE.active is False


@pytest.mark.parametrize("filename,workload,events", GOLDEN)
def test_golden_trace_replays_byte_identically(filename, workload, events):
    recorded = RunTrace.read_jsonl(FIXTURES / filename)
    assert recorded.header["workload"] == workload
    assert recorded.schema_version == SCHEMA_VERSION
    assert len(recorded.events) == events

    report = replay_trace(recorded)
    assert report.match, report.diff_text()
    assert recorded.canonical_bytes() == report.replayed.canonical_bytes()


@pytest.mark.parametrize("filename,workload,events", GOLDEN)
def test_golden_trace_file_bytes_are_stable(filename, workload, events, tmp_path):
    """Re-serializing a loaded golden trace reproduces the committed file
    exactly — the on-disk format itself is part of the contract."""
    path = FIXTURES / filename
    out = tmp_path / filename
    RunTrace.read_jsonl(path).write_jsonl(out)
    assert out.read_bytes() == path.read_bytes()


def test_solubility_golden_carries_obs_cross_links():
    """The solubility fixture was recorded with observability enabled, so
    every event is linked to the span that enclosed its interception."""
    recorded = RunTrace.read_jsonl(FIXTURES / "solubility-2024.trace.jsonl")
    assert recorded.header["obs"] is True
    span_ids = [event["obs_span_id"] for event in recorded.events]
    assert all(isinstance(sid, int) for sid in span_ids)
    assert len(set(span_ids)) == len(span_ids)


def test_bug_golden_records_the_detection():
    """The fault-campaign fixture ends in the Bug A door-closed alert."""
    recorded = RunTrace.read_jsonl(FIXTURES / "bug-H1-modified.trace.jsonl")
    outcome = recorded.footer["outcome"]
    assert outcome["detected"] is True
    assert outcome["matches_paper"] is True
    final = recorded.events[-1]["verdict"]
    assert final["outcome"] != "allowed"
    assert final["rule_id"] == "G1"


def test_multi_door_golden_touches_compound_door_state():
    """The multi-door fixture exercises per-door ``device:door`` keys."""
    recorded = RunTrace.read_jsonl(FIXTURES / "multi-door-2024.trace.jsonl")
    touched = {
        key
        for event in recorded.events
        for _, key, _ in event["state_delta"]
    }
    assert "mdoser:front" in touched
    assert "mdoser:back" in touched
