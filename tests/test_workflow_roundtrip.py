"""Export → load → run round-trip coverage.

An exported preset spec *is* the workflow: loading it back and running
it must produce a journal byte-identical to running the in-memory DAG —
through the Python API, through the CLI (``workflow export`` then
``workflow run --spec``), and under trace record/replay (the ``workflow``
workload replays cleanly whether it was named as a preset or loaded from
a spec file, and the two traces agree event for event).
"""

import json

import pytest

from repro.cli import main
from repro.trace.recorder import RunTrace
from repro.trace.replay import replay_trace
from repro.trace.workloads import record_workload
from repro.workflow import (
    WorkflowDAG,
    build_context,
    build_preset,
    execute_dag,
    journal_bytes,
    run_journal,
)


def _run_to_bytes(dag: WorkflowDAG) -> bytes:
    ctx = build_context(
        deck=dag.deck, deck_params=dag.deck_params, prepare=dag.prepare
    )
    result = execute_dag(dag, ctx)
    return journal_bytes(
        run_journal(
            ctx.trace,
            result.executed_nodes,
            result.completed,
            result.alert,
            result.device_error,
            result.recovered,
        )
    )


class TestSpecRoundTrip:
    @pytest.mark.parametrize("name", ["two_door", "centrifuge", "testbed_bug_a"])
    def test_export_load_run_byte_identical(self, name, tmp_path):
        dag = build_preset(name)
        path = tmp_path / f"{name}.spec.json"
        path.write_bytes(dag.spec_bytes())
        loaded = WorkflowDAG.from_spec(json.loads(path.read_text()))
        assert loaded.spec_bytes() == dag.spec_bytes()
        assert _run_to_bytes(loaded) == _run_to_bytes(dag)

    def test_parameterized_spec_round_trips(self, tmp_path):
        dag = build_preset("solubility", {"dissolution_rounds": 1})
        loaded = WorkflowDAG.from_spec(json.loads(dag.spec_bytes()))
        assert _run_to_bytes(loaded) == _run_to_bytes(dag)


class TestWorkflowCli:
    def test_export_then_run_spec_matches_preset_run(self, tmp_path):
        spec = tmp_path / "wf.spec.json"
        direct = tmp_path / "direct.journal.json"
        via_spec = tmp_path / "viaspec.journal.json"
        assert main(["workflow", "export", "two_door", "--out", str(spec)]) == 0
        assert main(["workflow", "run", "two_door", "--journal", str(direct)]) == 0
        assert (
            main(["workflow", "run", "--spec", str(spec), "--journal", str(via_spec)])
            == 0
        )
        assert direct.read_bytes() == via_spec.read_bytes()

    def test_show_spec_equals_show_preset(self, tmp_path, capsys):
        spec = tmp_path / "wf.spec.json"
        assert main(["workflow", "export", "centrifuge", "--out", str(spec)]) == 0
        capsys.readouterr()
        assert main(["workflow", "show", "centrifuge"]) == 0
        from_preset = capsys.readouterr().out
        assert main(["workflow", "show", "--spec", str(spec)]) == 0
        from_file = capsys.readouterr().out
        assert from_preset == from_file

    def test_list_names_presets_and_steps(self, capsys):
        assert main(["workflow", "list", "--steps"]) == 0
        out = capsys.readouterr().out
        for expected in ("two_door", "solubility", "testbed_bug_a", "move", "set_door"):
            assert expected in out

    def test_run_exit_codes(self, tmp_path):
        # Bug A stops on an alert: run "succeeds" as a command but the
        # workflow did not complete, so the exit code is 1.
        assert main(["workflow", "run", "testbed_bug_a"]) == 1
        assert main(["workflow", "run", "no_such_preset"]) == 2
        assert main(["workflow", "run", "--spec", "/nonexistent/wf.json"]) == 2
        assert main(["workflow", "show", "solubility", "--param", "bogus=1"]) == 2
        bad = tmp_path / "bad.spec.json"
        bad.write_text("{not json")
        assert main(["workflow", "show", "--spec", str(bad)]) == 2


class TestTraceRoundTrip:
    def test_workflow_workload_replays(self):
        trace = record_workload("workflow", {"preset": "two_door"})
        report = replay_trace(trace)
        assert report.match, report.diff_text()
        assert trace.footer["outcome"]["journal_digest"]

    def test_spec_trace_matches_preset_trace(self, tmp_path):
        """Recording via a spec file reproduces the preset recording's
        command stream exactly — only the workload identity (header and
        digest-bearing footer stay equal) differs."""
        spec = tmp_path / "two_door.spec.json"
        spec.write_bytes(build_preset("two_door").spec_bytes())
        from_preset = record_workload("workflow", {"preset": "two_door"})
        from_spec = record_workload("workflow", {"spec": str(spec)})
        assert from_preset.events == from_spec.events
        assert (
            from_preset.footer["outcome"]["journal_digest"]
            == from_spec.footer["outcome"]["journal_digest"]
        )
        report = replay_trace(from_spec)
        assert report.match, report.diff_text()

    def test_persisted_workflow_trace_replays(self, tmp_path):
        trace = record_workload(
            "workflow", {"preset": "solubility", "dissolution_rounds": 1}
        )
        path = tmp_path / "wf.trace.jsonl"
        trace.write_jsonl(path)
        loaded = RunTrace.read_jsonl(path)
        assert loaded.canonical_bytes() == trace.canonical_bytes()
        report = replay_trace(loaded)
        assert report.match, report.diff_text()

    def test_fuzz_workload_replays(self):
        trace = record_workload("fuzz", {"seed": 2024, "index": 1})
        report = replay_trace(trace)
        assert report.match, report.diff_text()
        assert "detected" in trace.footer["outcome"]

    def test_workflow_workload_rejects_ambiguous_params(self, tmp_path):
        spec = tmp_path / "wf.spec.json"
        spec.write_bytes(build_preset("two_door").spec_bytes())
        with pytest.raises(KeyError, match="not both"):
            record_workload(
                "workflow", {"preset": "two_door", "spec": str(spec)}
            )
        with pytest.raises(KeyError, match="no extra parameters"):
            record_workload("workflow", {"spec": str(spec), "amount_mg": 2.0})
