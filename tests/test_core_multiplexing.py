"""Tests for time and space multiplexing of multiple arms."""

import pytest

from repro.core.errors import SafetyViolation
from repro.core.multiplexing import SpaceMultiplexer, TimeMultiplexer
from repro.geometry.walls import SoftwareWall
from repro.lab.workflows import build_testbed_workflow, run_workflow
from repro.testbed.deck import (
    attach_space_multiplexing,
    attach_time_multiplexing,
    build_testbed_deck,
    make_testbed_rabit,
    sleep_footprints,
)


@pytest.fixture()
def wired():
    deck = build_testbed_deck()
    rabit, proxies, _ = make_testbed_rabit(deck)
    return deck, rabit, proxies


class TestSleepFootprints:
    def test_footprints_cover_both_frames(self, wired):
        deck, rabit, proxies = wired
        footprints = sleep_footprints(deck)
        assert set(footprints) == {"viperx", "ned2"}
        for frames in footprints.values():
            assert set(frames) == {"viperx", "ned2"}

    def test_own_frame_footprint_contains_sleep_pose(self, wired):
        deck, rabit, proxies = wired
        footprints = sleep_footprints(deck)
        sleep_ee = deck.viperx.kinematics.chain.end_effector_position(
            deck.viperx.profile.sleep_q
        )
        assert footprints["viperx"]["viperx"].contains(sleep_ee)


class TestTimeMultiplexing:
    def test_second_robot_vetoed_while_first_awake(self, wired):
        deck, rabit, proxies = wired
        attach_time_multiplexing(rabit, deck)
        proxies["viperx"].go_to_home_pose()  # viperx wakes
        with pytest.raises(SafetyViolation, match="time multiplexing"):
            proxies["ned2"].go_to_home_pose()

    def test_handoff_after_sleep(self, wired):
        deck, rabit, proxies = wired
        mux = attach_time_multiplexing(rabit, deck)
        proxies["viperx"].go_to_home_pose()
        assert mux.awake == ("viperx",)
        proxies["viperx"].go_to_sleep_pose()
        assert mux.awake == ()
        proxies["ned2"].go_to_home_pose()  # now allowed
        assert mux.awake == ("ned2",)

    def test_sleeping_arm_becomes_obstacle(self, wired):
        deck, rabit, proxies = wired
        attach_time_multiplexing(rabit, deck)
        names = {c.name for c in rabit.model.obstacles_for_frame("viperx")}
        assert "sleeping_ned2" in names and "sleeping_viperx" in names
        proxies["viperx"].go_to_home_pose()
        names = {c.name for c in rabit.model.obstacles_for_frame("ned2")}
        assert "sleeping_viperx" not in names  # awake arms are not cuboids
        assert "sleeping_ned2" in names

    def test_unknown_robot_footprint_rejected(self, wired):
        deck, rabit, proxies = wired
        with pytest.raises(ValueError, match="unknown robots"):
            TimeMultiplexer(rabit, {"kuka": {}})

    def test_safe_workflow_unaffected(self):
        deck = build_testbed_deck(noise_sigma=0.003)
        rabit, proxies, _ = make_testbed_rabit(deck)
        attach_time_multiplexing(rabit, deck)
        result = run_workflow(build_testbed_workflow(proxies))
        assert result.completed and rabit.alert_count == 0


class TestSpaceMultiplexing:
    def test_wall_vetoes_cross_midline_move(self, wired):
        deck, rabit, proxies = wired
        attach_space_multiplexing(rabit, deck)
        with pytest.raises(SafetyViolation, match="deck_divider"):
            # Ned2 commanded across the world x = 0.47 midline.
            proxies["ned2"].move_pose([0.365, -0.010, 0.192])

    def test_own_side_moves_allowed(self, wired):
        deck, rabit, proxies = wired
        attach_space_multiplexing(rabit, deck)
        proxies["ned2"].move_to_location("grid_ne_ned2_safe")
        proxies["viperx"].move_to_location("grid_nw_viperx_safe")
        assert rabit.alert_count == 0

    def test_concurrent_motion_is_legal(self, wired):
        # Unlike time multiplexing, both arms may be awake at once.
        deck, rabit, proxies = wired
        attach_space_multiplexing(rabit, deck)
        proxies["viperx"].go_to_home_pose()
        proxies["ned2"].go_to_home_pose()
        assert rabit.alert_count == 0

    def test_unknown_frame_rejected(self, wired):
        deck, rabit, proxies = wired
        with pytest.raises(ValueError, match="unknown robot frames"):
            SpaceMultiplexer(rabit, {"kuka": SoftwareWall((1, 0, 0), 0.5)})

    def test_dividing_wall_builder(self):
        walls = SpaceMultiplexer.dividing_wall_for_frames(
            axis=0,
            boundary_in_frame={"a": 0.5, "b": 0.3},
            keep_below={"a": True, "b": False},
        )
        assert walls["a"].allows([0.4, 0, 0])
        assert not walls["a"].allows([0.6, 0, 0])
        assert walls["b"].allows([0.4, 0, 0])
        assert not walls["b"].allows([0.2, 0, 0])
