"""Unit tests for devices.base and devices.container."""

import pytest

from repro.devices.base import Device, DeviceKind, Door, DoorState, SimulatedConnection
from repro.devices.container import Contents, Vial


class TestDoor:
    def test_initial_state(self):
        assert Door(DoorState.OPEN).is_open
        assert not Door(DoorState.CLOSED).is_open

    def test_set_state(self):
        door = Door(DoorState.CLOSED)
        door.set_state(DoorState.OPEN)
        assert door.is_open

    def test_jammed_door_ignores_commands(self):
        door = Door(DoorState.CLOSED)
        door.jam()
        door.set_state(DoorState.OPEN)
        assert not door.is_open  # silent failure, visible only via status
        door.unjam()
        door.set_state(DoorState.OPEN)
        assert door.is_open


class TestSimulatedConnection:
    def test_ports_are_unique(self):
        a, b = SimulatedConnection(), SimulatedConnection()
        assert a.port != b.port

    def test_explicit_port_kept(self):
        assert SimulatedConnection(port=9999).port == 9999


class TestDeviceBase:
    def test_command_log_records_in_order(self):
        device = Device("thing")
        device._record("a()")
        device._record("b()")
        assert device.command_log == ["a()", "b()"]

    def test_default_status_is_empty(self):
        assert Device("thing").status() == {}


class TestContents:
    def test_empty_flags(self):
        c = Contents()
        assert c.is_empty and not c.has_solid and not c.has_liquid

    def test_phase_flags(self):
        assert Contents(solid_mg=1.0).has_solid
        assert Contents(liquid_ml=1.0).has_liquid
        assert not Contents(solid_mg=1.0).is_empty


class TestVial:
    def test_kind_is_container(self):
        assert Vial("v").kind is DeviceKind.CONTAINER

    def test_cap_decap(self):
        vial = Vial("v", stoppered=True)
        vial.decap_vial()
        assert not vial.stoppered
        vial.cap_vial()
        assert vial.stoppered

    def test_status_reports_only_stopper(self):
        vial = Vial("v", stoppered=False)
        assert vial.status() == {"stopper": "off"}

    def test_dose_through_stopper_spills_everything(self):
        vial = Vial("v", stoppered=True)
        kept = vial.add_solid(5.0)
        assert kept == 0.0
        assert vial.contents.solid_mg == 0.0
        assert vial.contents.spilled_mg == 5.0

    def test_dose_within_capacity(self):
        vial = Vial("v", capacity_solid_mg=10.0, stoppered=False)
        assert vial.add_solid(7.0) == 7.0
        assert vial.contents.solid_mg == 7.0
        assert vial.contents.spilled_mg == 0.0

    def test_overfill_spills_excess(self):
        vial = Vial("v", capacity_solid_mg=10.0, stoppered=False)
        vial.add_solid(8.0)
        kept = vial.add_solid(5.0)
        assert kept == pytest.approx(2.0)
        assert vial.contents.solid_mg == pytest.approx(10.0)
        assert vial.contents.spilled_mg == pytest.approx(3.0)

    def test_liquid_capacity(self):
        vial = Vial("v", capacity_liquid_ml=20.0, stoppered=False)
        assert vial.add_liquid(25.0) == pytest.approx(20.0)
        assert vial.contents.liquid_ml == pytest.approx(20.0)

    def test_negative_dose_rejected(self):
        vial = Vial("v", stoppered=False)
        with pytest.raises(ValueError):
            vial.add_solid(-1.0)
        with pytest.raises(ValueError):
            vial.add_liquid(-1.0)

    def test_shatter_loses_contents(self):
        vial = Vial("v", stoppered=False)
        vial.add_solid(5.0)
        vial.add_liquid(3.0)
        vial.shatter()
        assert vial.broken
        assert vial.contents.is_empty
        assert vial.contents.spilled_mg > 0

    def test_broken_vial_cannot_be_filled(self):
        vial = Vial("v", stoppered=False)
        vial.shatter()
        assert vial.add_solid(5.0) == 0.0
