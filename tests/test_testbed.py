"""Tests for the testbed deck, noise model, and calibration experiment."""

import numpy as np
import pytest

from repro.core.config import validate_config
from repro.geometry.vec import as_vec3
from repro.testbed.calibration import run_calibration_experiment
from repro.testbed.deck import NED2_BASE, build_testbed_deck, _world_to_ned2
from repro.testbed.noise import NoiseModel
from repro.geometry.shapes import Cuboid


class TestDeckBuild:
    def test_config_is_valid(self):
        deck = build_testbed_deck()
        errors = [i for i in validate_config(deck.config) if i.severity == "error"]
        assert errors == []

    def test_two_arms_in_distinct_frames(self):
        deck = build_testbed_deck()
        assert deck.viperx.profile.name == "viperx"
        assert deck.ned2.profile.name == "ned2"
        assert set(deck.world.frames.frames()) >= {"viperx", "ned2"}

    def test_container_tracking_flagged_unreliable(self):
        # Gripper-level pick/place means belief-only tracking (Bug C).
        deck = build_testbed_deck()
        assert deck.model.reliable_container_tracking is False

    def test_frame_transform_roundtrip(self):
        deck = build_testbed_deck()
        world_point = [0.52, 0.05, 0.12]
        ned2_point = NED2_BASE.inverse().apply(world_point)
        back = deck.world.to_world(ned2_point, "ned2")
        assert np.allclose(back, world_point, atol=1e-12)

    def test_shared_grid_slot_consistent_across_frames(self):
        # grid_ne_ned2 carries coordinates in both frames; they must name
        # the same physical point.
        deck = build_testbed_deck()
        loc = deck.world.locations.get("grid_ne_ned2")
        in_world_via_ned2 = deck.world.to_world(loc.coord_for("ned2"), "ned2")
        in_world_via_viperx = deck.world.to_world(loc.coord_for("viperx"), "viperx")
        assert np.allclose(in_world_via_ned2, in_world_via_viperx, atol=1e-9)

    def test_world_to_ned2_cuboid_stays_axis_aligned(self):
        box = Cuboid((0.38, -0.08, 0.0), (0.64, 0.10, 0.05), name="grid")
        mapped = _world_to_ned2(box)
        # 180-degree rotation: x' = 0.82 - x, y' = -y, z' = z.
        assert mapped.lo[0] == pytest.approx(0.82 - 0.64)
        assert mapped.hi[0] == pytest.approx(0.82 - 0.38)
        assert mapped.lo[2] == pytest.approx(0.0)

    def test_both_arms_reach_their_slots(self):
        deck = build_testbed_deck()
        for arm, slot in ((deck.viperx, "grid_nw_viperx"), (deck.ned2, "grid_ne_ned2")):
            target = as_vec3(deck.world.locations.get(slot).coord_for(arm.name))
            plan = arm.kinematics.plan_move(target)
            assert not plan.skipped


class TestNoiseModel:
    def test_deterministic_under_seed(self):
        a = NoiseModel(sigma=0.01, seed=5)
        b = NoiseModel(sigma=0.01, seed=5)
        assert np.allclose(a.perturb([0, 0, 0]), b.perturb([0, 0, 0]))

    def test_reset_replays_sequence(self):
        model = NoiseModel(sigma=0.01, seed=5)
        first = model.perturb([0, 0, 0])
        model.reset()
        assert np.allclose(model.perturb([0, 0, 0]), first)

    def test_bias_applied(self):
        model = NoiseModel(sigma=0.0, bias=(0.01, -0.02, 0.03))
        assert np.allclose(model.perturb([1, 1, 1]), [1.01, 0.98, 1.03])

    def test_perturb_many_shape(self):
        model = NoiseModel(sigma=0.001)
        out = model.perturb_many(np.zeros((5, 3)))
        assert out.shape == (5, 3)


class TestCalibration:
    def test_mean_error_matches_paper_band(self):
        # §IV: "an average error of 3 cm".  Accept 2-4.5 cm.
        result = run_calibration_experiment()
        assert 0.02 <= result.mean_error <= 0.045

    def test_errors_per_fiducial_reported(self):
        result = run_calibration_experiment()
        assert len(result.errors) == 10
        assert result.max_error >= result.mean_error

    def test_deterministic(self):
        a = run_calibration_experiment()
        b = run_calibration_experiment()
        assert a.mean_error == pytest.approx(b.mean_error)

    def test_perfect_reports_fit_exactly(self):
        # With no noise and no gripper offsets the transform is exact...
        # (sanity check of the experiment harness itself).
        clean = NoiseModel(sigma=0.0, bias=(0, 0, 0))
        result = run_calibration_experiment(
            viperx_noise=clean, ned2_noise=NoiseModel(sigma=0.0, bias=(0, 0, 0))
        )
        # Gripper offsets remain, so error is not zero — but it must be
        # well below the noisy case and strictly positive.
        assert 0.0 < result.mean_error < 0.06
