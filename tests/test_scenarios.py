"""The §IV controlled experiments: every rule's violation is detected.

"We deliberately executed unsafe scenarios designed to trigger each rule
in the rulebase ... RABIT successfully detected unsafe behavior in all
these scenarios."
"""

import pytest

from repro.lab.scenarios import (
    ALL_SCENARIOS,
    CUSTOM_SCENARIOS,
    GENERAL_SCENARIOS,
    run_scenario,
)


class TestScenarioInventory:
    def test_one_scenario_per_general_rule(self):
        assert [s.rule_id for s in GENERAL_SCENARIOS] == [
            f"G{i}" for i in range(1, 12)
        ]

    def test_one_scenario_per_custom_rule(self):
        assert [s.rule_id for s in CUSTOM_SCENARIOS] == ["C1", "C2", "C3", "C4"]


@pytest.mark.parametrize("scenario", ALL_SCENARIOS, ids=lambda s: s.rule_id)
def test_rule_violation_detected_and_attributed(scenario):
    outcome = run_scenario(scenario)
    assert outcome.detected, f"{scenario.rule_id} violation was not detected"
    assert outcome.attributed_correctly, (
        f"{scenario.rule_id} expected, alert was {outcome.alert}"
    )


@pytest.mark.parametrize("scenario", ALL_SCENARIOS, ids=lambda s: s.rule_id)
def test_detection_is_preemptive(scenario):
    """RABIT stops the experiment before the unsafe command executes —
    the deck's ground truth records no damage."""
    from repro.lab.hein import build_hein_deck

    # run_scenario builds its own deck; re-run and inspect indirectly by
    # checking the alert's command never reached a device: a detected
    # precondition violation raises before execution, so the scenario
    # function cannot have produced damage.  We verify via a fresh run
    # that also captures the deck.
    deck = build_hein_deck()
    if scenario.prepare is not None:
        scenario.prepare(deck)
    from repro.core.errors import SafetyViolation
    from repro.lab.hein import make_hein_rabit

    rabit, proxies, _ = make_hein_rabit(deck)
    try:
        scenario.script(proxies, deck)
    except SafetyViolation:
        pass
    assert deck.world.damage_log == (), (
        f"{scenario.rule_id}: damage occurred despite preemptive detection"
    )


class TestTestbedControlledScenarios:
    """§IV also ran controlled experiments on the testbed ("we attempted
    to move ViperX inside the dosing device while its door was closed");
    the same rules must fire on the low-fidelity deck."""

    def test_inventory(self):
        from repro.lab.scenarios import TESTBED_SCENARIOS

        assert [s.rule_id for s in TESTBED_SCENARIOS] == ["G1", "G3", "G9", "G11"]

    @pytest.mark.parametrize(
        "index", range(4), ids=lambda i: ["G1", "G3", "G9", "G11"][i]
    )
    def test_detected_on_testbed(self, index):
        from repro.lab.scenarios import TESTBED_SCENARIOS, run_testbed_scenario

        outcome = run_testbed_scenario(TESTBED_SCENARIOS[index])
        assert outcome.detected and outcome.attributed_correctly, str(outcome.alert)
