"""Property-based tests (hypothesis) on the core data structures and
geometric invariants RABIT's checks are built from."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.state import LabState, OBSERVABLE_VARS
from repro.geometry.collision import (
    cuboids_overlap,
    point_in_cuboid,
    segment_cuboid_entry_time,
)
from repro.geometry.shapes import Cuboid, bounding_cuboid
from repro.geometry.transforms import (
    estimate_rigid_transform,
    rotation_x,
    rotation_y,
    rotation_z,
    translation,
)
from repro.geometry.walls import SoftwareWall

finite = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False)
point = st.tuples(finite, finite, finite)
small = st.floats(min_value=0.01, max_value=5.0)
angle = st.floats(min_value=-math.pi, max_value=math.pi)


def boxes():
    return st.builds(
        lambda c, s: Cuboid.from_center(list(c), [max(x, 1e-3) for x in s]),
        point,
        st.tuples(small, small, small),
    )


class TestCuboidProperties:
    @given(boxes())
    def test_center_is_contained(self, box):
        assert box.contains(box.center)

    @given(boxes(), point)
    def test_closest_point_is_contained(self, box, p):
        assert box.contains(box.closest_point(p), tol=1e-9)

    @given(boxes(), st.floats(min_value=0.0, max_value=1.0))
    def test_inflation_is_monotone(self, box, margin):
        bigger = box.inflated(margin)
        for corner in box.corners():
            assert bigger.contains(corner, tol=1e-9)

    @given(boxes(), point)
    def test_distance_zero_iff_contained(self, box, p):
        inside = box.contains(p)
        distance = box.distance_to_point(p)
        if inside:
            assert distance == 0.0
        else:
            assert distance > 0.0

    @given(st.lists(point, min_size=1, max_size=20))
    def test_bounding_cuboid_contains_all_points(self, points):
        box = bounding_cuboid(points)
        for p in points:
            assert box.contains(p, tol=1e-9)

    @given(boxes())
    def test_overlap_is_reflexive(self, box):
        assert cuboids_overlap(box, box)


class TestSegmentProperties:
    @given(boxes(), point, point)
    def test_entry_time_point_is_on_boundary_or_inside(self, box, a, b):
        t = segment_cuboid_entry_time(a, b, box)
        if t is not None:
            assert 0.0 <= t <= 1.0
            contact = np.asarray(a) + (np.asarray(b) - np.asarray(a)) * t
            assert box.contains(contact, tol=1e-6)

    @given(boxes(), point, point)
    def test_endpoint_inside_implies_hit(self, box, a, b):
        if point_in_cuboid(a, box) or point_in_cuboid(b, box):
            assert segment_cuboid_entry_time(a, b, box) is not None


class TestTransformProperties:
    @settings(max_examples=50)
    @given(point, angle, angle, angle)
    def test_rigid_transforms_preserve_distances(self, offset, ax, ay, az):
        t = translation(list(offset)) @ rotation_x(ax) @ rotation_y(ay) @ rotation_z(az)
        p, q = np.array([0.3, -0.2, 0.5]), np.array([-1.0, 0.4, 0.1])
        d_before = np.linalg.norm(p - q)
        d_after = np.linalg.norm(t.apply(p) - t.apply(q))
        assert d_after == pytest.approx(d_before, abs=1e-9)

    @settings(max_examples=50)
    @given(point, angle, angle)
    def test_inverse_is_exact(self, offset, ax, az):
        t = translation(list(offset)) @ rotation_x(ax) @ rotation_z(az)
        p = np.array([0.7, -0.8, 0.9])
        assert np.allclose(t.inverse().apply(t.apply(p)), p, atol=1e-9)

    @settings(max_examples=30)
    @given(point, angle, angle)
    def test_kabsch_recovers_rigid_transforms(self, offset, ax, az):
        truth = translation(list(offset)) @ rotation_x(ax) @ rotation_z(az)
        src = np.array(
            [[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1], [1, 1, 0], [0.5, -0.5, 0.5]]
        )
        dst = [truth.apply(p) for p in src]
        fitted = estimate_rigid_transform(src, dst)
        assert fitted.is_close(truth, atol=1e-8)


class TestWallProperties:
    @settings(max_examples=50)
    @given(point, st.floats(min_value=-5, max_value=5), point)
    def test_flip_partitions_space(self, normal, offset, p):
        if all(abs(n) < 1e-6 for n in normal):
            return
        wall = SoftwareWall(normal, offset)
        flipped = wall.flipped()
        d = wall.signed_distance(p)
        if abs(d) > 1e-9:
            assert wall.allows(p) != flipped.allows(p)


class TestLabStateProperties:
    keys = st.sampled_from(["a", "b", "c"])
    values = st.one_of(st.none(), st.booleans(), st.text(max_size=5), finite)

    @settings(max_examples=50)
    @given(st.lists(st.tuples(st.sampled_from(sorted(OBSERVABLE_VARS)), keys, values), max_size=10))
    def test_merge_observed_is_idempotent(self, assignments):
        observed = LabState()
        for var, key, value in assignments:
            observed.set(var, key, value)
        base = LabState()
        once = base.merge_observed(observed)
        twice = once.merge_observed(observed)
        assert once.diff_observable(twice) == []

    @settings(max_examples=50)
    @given(st.lists(st.tuples(st.sampled_from(sorted(OBSERVABLE_VARS)), keys, values), max_size=10))
    def test_diff_with_self_is_empty(self, assignments):
        state = LabState()
        for var, key, value in assignments:
            state.set(var, key, value)
        assert state.diff_observable(state.copy()) == []

    @settings(max_examples=50)
    @given(st.lists(st.tuples(keys, st.one_of(st.none(), st.text(max_size=3))), max_size=8))
    def test_vial_at_inverts_container_at(self, placements):
        state = LabState()
        for vial, location in placements:
            state.set("container_at", vial, location)
        for vial, location in state.entries("container_at").items():
            if location is not None:
                assert state.vial_at(location) in state.keys_where("container_at", location)


class TestRuleCheckPurity:
    """Rule checks are pure: validating an action never mutates the
    state snapshot — otherwise a vetoed command could corrupt RABIT's
    belief about the lab."""

    def test_checking_all_rules_leaves_state_untouched(self):
        from repro.core.actions import ActionCall, ActionLabel
        from repro.core.rulebase import CheckContext, build_default_rulebase
        from repro.lab.hein import build_hein_deck, make_hein_rabit

        deck = build_hein_deck()
        rabit, _, _ = make_hein_rabit(deck)
        rulebase = build_default_rulebase(["C1", "C2", "C3", "C4"])
        snapshot = {
            var: rabit.state.entries(var)
            for var in ("door_status", "robot_holding", "container_at", "device_active")
        }
        calls = [
            ActionCall(ActionLabel.MOVE_ROBOT_INSIDE, "ur3e", robot="ur3e",
                       location="dosing_interior", target=(0.0, 0.38, 0.12)),
            ActionCall(ActionLabel.START_DOSING, "dosing_device", quantity=15.0),
            ActionCall(ActionLabel.PLACE_OBJECT, "ur3e", robot="ur3e",
                       location="centrifuge_slot", target=(0.0, -0.38, 0.13)),
            ActionCall(ActionLabel.OPEN_DOOR, "dosing_device"),
            ActionCall(ActionLabel.START_ACTION, "hotplate", value=999.0),
        ]
        for call in calls:
            rulebase.check_action(
                CheckContext(
                    state=rabit.state, call=call, model=rabit.model,
                    account_held_objects=True, enforce_workspace_bounds=True,
                    enforce_capacity=True,
                )
            )
        for var, entries in snapshot.items():
            assert rabit.state.entries(var) == entries, var
