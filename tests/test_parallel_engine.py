"""Unit tests for the sharded process-pool engine (cheap tasks only).

The heavy end-to-end guarantees (parallel Monte Carlo / campaign equal to
sequential) live in ``test_parallel_differential.py``; this file pins the
engine mechanics with toy tasks: canonical-order merge under out-of-order
completion, worker resolution, the sequential fallback, per-process
initialization, obs metrics, and error propagation.
"""

import os
import time

import pytest

from repro.obs import OBS
from repro.parallel.engine import fork_pool_available, resolve_workers, run_sharded

_WARMED = {"count": 0}


def _square(x: int) -> int:
    return x * x


def _slow_square(x: int) -> int:
    # Later tasks finish sooner, so unordered completion actually happens
    # and the positional merge has something to fix.
    time.sleep(0.002 * (7 - (x % 8)))
    return x * x


def _warm() -> None:
    _WARMED["count"] += 1


def _warmed_pid(_: int) -> tuple:
    return os.getpid(), _WARMED["count"]


def _boom(x: int) -> int:
    raise ValueError(f"task {x} exploded")


class TestResolveWorkers:
    def test_none_and_zero_mean_cpu_count(self):
        expected = max(1, min(os.cpu_count() or 1, 10))
        assert resolve_workers(None, 10) == expected
        assert resolve_workers(0, 10) == expected

    def test_clamped_to_task_count(self):
        assert resolve_workers(8, 3) == 3
        assert resolve_workers(8, 0) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-2, 4)


class TestRunSharded:
    def test_sequential_path_preserves_order(self):
        assert run_sharded(range(9), _square, workers=1) == [x * x for x in range(9)]

    def test_empty_task_list(self):
        assert run_sharded([], _square, workers=4) == []

    @pytest.mark.skipif(not fork_pool_available(), reason="no fork start method")
    def test_parallel_merge_is_canonical_order(self):
        tasks = list(range(23))
        expected = [x * x for x in tasks]
        assert run_sharded(tasks, _slow_square, workers=4) == expected
        # A chunk size that does not divide the task count still merges.
        assert run_sharded(tasks, _slow_square, workers=4, chunk_size=5) == expected

    @pytest.mark.skipif(not fork_pool_available(), reason="no fork start method")
    def test_initializer_warms_each_process_once(self):
        before = _WARMED["count"]
        results = run_sharded(range(12), _warmed_pid, workers=3, initializer=_warm)
        # Forked workers inherit the parent's counter value and bump it
        # exactly once each; the parent's own counter is untouched.
        assert _WARMED["count"] == before
        assert {warmed for _, warmed in results} == {before + 1}
        assert all(pid != os.getpid() for pid, _ in results)

    def test_initializer_runs_in_process_on_fallback(self):
        before = _WARMED["count"]
        results = run_sharded(range(3), _warmed_pid, workers=1, initializer=_warm)
        assert _WARMED["count"] == before + 1
        assert all(pid == os.getpid() for pid, _ in results)
        _WARMED["count"] = before

    @pytest.mark.skipif(not fork_pool_available(), reason="no fork start method")
    def test_worker_error_propagates(self):
        with pytest.raises(ValueError, match="exploded"):
            run_sharded(range(4), _boom, workers=2)


class TestEngineMetrics:
    def _totals(self):
        reg = OBS.registry
        return (
            reg.get("parallel_mutants_dispatched_total").total(),
            reg.get("parallel_mutants_completed_total").total(),
            reg.get("parallel_mutant_wall_seconds").counts(kind="unit")["count"],
        )

    def test_disabled_records_nothing(self):
        OBS.reset()
        run_sharded(range(5), _square, workers=2, kind="unit")
        assert self._totals() == (0.0, 0.0, 0.0)

    def test_enabled_counts_dispatch_completion_and_wall(self):
        OBS.reset()
        OBS.enable()
        try:
            run_sharded(range(5), _square, workers=2, kind="unit")
        finally:
            OBS.disable()
        dispatched, completed, observed = self._totals()
        assert dispatched == 5.0
        assert completed == 5.0
        assert observed == 5.0
        assert OBS.registry.get("parallel_pool_workers").value(kind="unit") >= 1.0
        OBS.reset()
