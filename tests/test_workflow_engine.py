"""Unit tests for the workflow engine: registry typing, DAG model,
surgery, validation, and executor semantics (all on sandboxed step sets
— no deck is ever built here, so this module stays fast)."""

import pytest

from repro.core.errors import Alert, AlertKind, SafetyViolation
from repro.kinematics.arm import UnreachableTargetError
from repro.workflow import (
    REGISTRY,
    StepError,
    StepRegistry,
    WorkflowDAG,
    WorkflowError,
    execute_dag,
)

ALERT = Alert(
    kind=AlertKind.INVALID_COMMAND,
    message="door is closed",
    command="robot.move(x)",
    rule_id="G1",
    involved=("robot", "door"),
)
ALERT_2 = Alert(kind=AlertKind.INVALID_TRAJECTORY, message="collision ahead")


def sandbox():
    """A tiny step set over a list-of-calls 'context'."""
    reg = StepRegistry()

    @reg.step("note", "append a tag")
    def _note(ctx, tag: str) -> None:
        ctx.append(tag)

    @reg.step("boom")
    def _boom(ctx, alert_no: int = 1) -> None:
        raise SafetyViolation(ALERT if alert_no == 1 else ALERT_2)

    @reg.step("jam")
    def _jam(ctx) -> None:
        raise UnreachableTargetError("arm", (9.0, 9.0, 9.0), 8.5)

    return reg


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_introspects_typed_params(self):
        reg = StepRegistry()

        @reg.step("demo")
        def _demo(ctx, robot: str, speed: float = 1.5, count: int = 2) -> None:
            pass

        spec = reg.get("demo")
        assert [p.name for p in spec.params] == ["robot", "speed", "count"]
        assert [p.kind for p in spec.params] == ["str", "float", "int"]
        assert spec.params[0].required and not spec.params[1].required
        assert spec.params[1].default == 1.5
        assert spec.signature() == "demo(robot: str, speed: float = 1.5, count: int = 2)"

    def test_quoted_annotations_resolve(self):
        """String annotations (PEP 563 and quoted kinds) map to kinds."""
        reg = StepRegistry()

        @reg.step("loc")
        def _loc(ctx, where: "location", target: "coords" = None) -> None:  # noqa: F821
            pass

        spec = reg.get("loc")
        assert [p.kind for p in spec.params] == ["location", "coords"]

    def test_rejects_unannotated_and_unknown_annotations(self):
        reg = StepRegistry()
        with pytest.raises(StepError, match="needs a type annotation"):
            reg.register("bad", lambda ctx, x: None)
        with pytest.raises(StepError, match="unsupported annotation"):

            @reg.step("worse")
            def _worse(ctx, x: dict) -> None:
                pass

    def test_rejects_varargs_and_duplicates(self):
        reg = StepRegistry()
        with pytest.raises(StepError, match="are not allowed"):

            @reg.step("splat")
            def _splat(ctx, *args: str) -> None:
                pass

        reg.register("once", lambda ctx: None)
        with pytest.raises(StepError, match="already registered"):
            reg.register("once", lambda ctx: None)

    def test_rejects_contextless_step(self):
        reg = StepRegistry()
        with pytest.raises(StepError, match="context argument"):
            reg.register("nullary", lambda: None)

    def test_unknown_step_names_candidates(self):
        reg = sandbox()
        with pytest.raises(StepError, match="unknown step 'nope'.*boom"):
            reg.get("nope")

    def test_bind_fills_defaults_and_coerces_ints(self):
        reg = sandbox()
        assert reg.get("boom").bind({}) == {"alert_no": 1}

        @reg.step("speedy")
        def _speedy(ctx, speed: float) -> None:
            pass

        bound = reg.get("speedy").bind({"speed": 3})
        assert bound == {"speed": 3.0} and isinstance(bound["speed"], float)

    def test_bind_errors_name_the_parameter(self):
        reg = sandbox()
        with pytest.raises(StepError, match="no parameter 'bogus'"):
            reg.get("note").bind({"bogus": 1})
        with pytest.raises(StepError, match="requires parameter 'tag'"):
            reg.get("note").bind({})
        with pytest.raises(StepError, match="parameter 'tag'.*expected a string"):
            reg.get("note").bind({"tag": 7})

    def test_bool_is_not_a_number(self):
        reg = StepRegistry()

        @reg.step("num")
        def _num(ctx, x: float) -> None:
            pass

        with pytest.raises(StepError, match="expected a number"):
            reg.get("num").bind({"x": True})

    def test_coords_and_location_kinds(self):
        reg = StepRegistry()

        @reg.step("go")
        def _go(ctx, where: "location") -> None:  # noqa: F821
            pass

        spec = reg.get("go")
        assert spec.bind({"where": "grid_a1"}) == {"where": "grid_a1"}
        assert spec.bind({"where": [1, 2, 3]}) == {"where": [1.0, 2.0, 3.0]}
        with pytest.raises(StepError, match="location name or a list"):
            spec.bind({"where": [1, 2]})

    def test_builtin_library_is_loaded(self):
        """Importing repro.workflow populates the default registry."""
        for name in ("move", "set_door", "run_action", "pick_up_object"):
            assert name in REGISTRY.list_steps()


# ---------------------------------------------------------------------------
# DAG model, surgery, validation, spec round-trip
# ---------------------------------------------------------------------------


def linear_dag(reg=None):
    dag = WorkflowDAG("lin", deck="testbed")
    dag.then("a", "note", tag="a")
    dag.then("b", "note", tag="b")
    dag.then("c", "note", tag="c")
    return dag


class TestDag:
    def test_then_chains_success_edges(self):
        dag = linear_dag()
        assert dag.entry == "a"
        assert dag.successor("a", "success") == "b"
        assert dag.successor("b", "success") == "c"
        assert dag.successor("c", "success") is None

    def test_duplicate_node_and_edge_rejected(self):
        dag = linear_dag()
        with pytest.raises(WorkflowError, match="duplicate node id"):
            dag.add_node("a", "note")
        with pytest.raises(WorkflowError, match="already has a success edge"):
            dag.edge("a", "c")
        with pytest.raises(WorkflowError, match="outcome must be one of"):
            dag.edge("c", "a", on="maybe")

    def test_drop_splices_middle_and_entry(self):
        dag = linear_dag()
        dag.drop("b")
        assert dag.successor("a", "success") == "c"
        assert "b" not in dag.nodes
        dag.drop("a")
        assert dag.entry == "c"
        with pytest.raises(WorkflowError, match="unknown node"):
            dag.drop("zzz")

    def test_insert_after_splices(self):
        dag = linear_dag()
        dag.insert_after("a", "x", "note", tag="x")
        assert dag.successor("a", "success") == "x"
        assert dag.successor("x", "success") == "b"
        dag.insert_after("c", "tail", "note", tag="t")
        assert dag.successor("c", "success") == "tail"
        dag.then("after_tail", "note", tag="z")  # _tail advanced to the insert
        assert dag.successor("tail", "success") == "after_tail"
        with pytest.raises(WorkflowError, match="unknown node"):
            dag.insert_after("zzz", "y", "note")

    def test_validate_catches_structural_errors(self):
        reg = sandbox()
        empty = WorkflowDAG("empty")
        with pytest.raises(WorkflowError, match="has no nodes"):
            empty.validate(reg)

        dangling = linear_dag()
        dangling.edges.append(type(dangling.edges[0])("c", "ghost", "success"))
        with pytest.raises(WorkflowError, match="unknown node 'ghost'"):
            dangling.validate(reg)

        orphaned = linear_dag()
        orphaned.add_node("island", "note", {"tag": "i"})
        with pytest.raises(WorkflowError, match="unreachable nodes.*island"):
            orphaned.validate(reg)

    def test_validate_catches_cycles(self):
        reg = sandbox()
        cyclic = WorkflowDAG("cyc")
        cyclic.then("a", "note", tag="a")
        cyclic.then("b", "note", tag="b")
        cyclic.edge("b", "a", on="failure")  # any outcome edge can close a loop
        with pytest.raises(WorkflowError, match="has a cycle"):
            cyclic.validate(reg)

    def test_validate_names_the_offending_node(self):
        reg = sandbox()
        dag = WorkflowDAG("bad")
        dag.then("first", "note", tag="ok")
        dag.then("second", "note", tag=42)
        with pytest.raises(StepError, match="node 'second'.*expected a string"):
            dag.validate(reg)
        unknown = WorkflowDAG("worse")
        unknown.then("only", "not_a_step")
        with pytest.raises(StepError, match="unknown step"):
            unknown.validate(reg)

    def test_spec_round_trip_is_identity(self):
        dag = linear_dag()
        dag.edge("a", "c", on="failure")
        dag.deck_params = {"noise_sigma": 0.001}
        dag.prepare = [{"vial": "vial_t1", "solid_mg": 2.0}]
        clone = WorkflowDAG.from_spec(dag.to_spec())
        assert clone.spec_bytes() == dag.spec_bytes()
        assert clone.entry == "a" and clone.deck == "testbed"

    def test_from_spec_rejects_bad_schema_and_shapes(self):
        with pytest.raises(WorkflowError, match="unsupported workflow spec schema"):
            WorkflowDAG.from_spec({"schema": "repro.workflow/v99"})
        spec = linear_dag().to_spec()
        spec["nodes"].append({"step": "note"})  # missing id
        with pytest.raises(WorkflowError, match="malformed node entry"):
            WorkflowDAG.from_spec(spec)
        spec = linear_dag().to_spec()
        spec["edges"].append({"from": "a"})  # missing "to"
        with pytest.raises(WorkflowError, match="malformed edge entry"):
            WorkflowDAG.from_spec(spec)


# ---------------------------------------------------------------------------
# Executor
# ---------------------------------------------------------------------------


class TestExecutor:
    def test_clean_run_executes_every_node(self):
        reg = sandbox()
        calls = []
        result = execute_dag(linear_dag(), calls, registry=reg)
        assert result.completed and not result.recovered
        assert result.executed_nodes == ["a", "b", "c"]
        assert calls == ["a", "b", "c"]
        assert not result.stopped_by_rabit and not result.stopped_by_device

    def test_safety_violation_without_failure_edge_halts(self):
        reg = sandbox()
        dag = WorkflowDAG("halt")
        dag.then("ok", "note", tag="ok")
        dag.then("bad", "boom")
        dag.then("never", "note", tag="never")
        calls = []
        result = execute_dag(dag, calls, registry=reg)
        assert not result.completed and not result.recovered
        assert result.executed_nodes == ["ok"]  # the failing node is excluded
        assert calls == ["ok"]
        assert result.alert is ALERT and result.stopped_by_rabit

    def test_failure_edge_recovers_and_keeps_first_alert(self):
        reg = sandbox()
        dag = WorkflowDAG("recover")
        dag.then("bad1", "boom", alert_no=1)
        dag.then("bad2", "boom", alert_no=2)
        dag.then("unreached", "note", tag="x")
        dag.add_node("cleanup", "note", {"tag": "cleanup"})
        dag.edge("bad1", "bad2", on="failure")
        dag.edge("bad2", "cleanup", on="failure")
        result = execute_dag(dag, calls := [], registry=reg)
        assert result.recovered and not result.completed
        assert result.alert is ALERT  # first alert retained, second dropped
        assert result.executed_nodes == ["cleanup"]
        assert calls == ["cleanup"]

    def test_device_error_routes_through_failure_edge(self):
        reg = sandbox()
        dag = WorkflowDAG("jammed")
        dag.then("jam", "jam")
        dag.add_node("cleanup", "note", {"tag": "c"})
        dag.edge("jam", "cleanup", on="failure")
        result = execute_dag(dag, [], registry=reg)
        assert result.recovered and not result.completed
        assert "cannot compute a trajectory" in result.device_error
        assert result.stopped_by_device and not result.stopped_by_rabit

    def test_device_error_without_edge_halts(self):
        reg = sandbox()
        dag = WorkflowDAG("jam_halt")
        dag.then("jam", "jam")
        result = execute_dag(dag, [], registry=reg)
        assert not result.completed and "cannot compute a trajectory" in result.device_error

    def test_invalid_dag_never_runs(self):
        reg = sandbox()
        dag = WorkflowDAG("invalid")
        dag.then("good", "note", tag="g")
        dag.then("typo", "note", tag=1)
        calls = []
        with pytest.raises(StepError, match="node 'typo'"):
            execute_dag(dag, calls, registry=reg)
        assert calls == []  # validation precedes the first command
