"""Unit tests for locations and the ground-truth LabWorld."""

import pytest

from repro.devices.base import Device
from repro.devices.container import Vial
from repro.devices.locations import LocationKind, LocationTable
from repro.devices.world import DamageEvent, DamageSeverity, LabWorld
from repro.geometry.shapes import Cuboid
from repro.geometry.transforms import identity, translation
from repro.geometry.walls import Workspace


def make_world() -> LabWorld:
    world = LabWorld("t", Workspace(bounds=Cuboid((-2, -2, -1), (2, 2, 2), name="room")))
    world.register_frame("arm", identity())
    return world


class TestLocationTable:
    def test_define_and_get(self):
        table = LocationTable()
        loc = table.define("slot", LocationKind.GRID_SLOT, {"arm": [1, 2, 3]})
        assert table.get("slot") is loc
        assert loc.coord_for("arm") == (1.0, 2.0, 3.0)

    def test_duplicate_name_rejected(self):
        table = LocationTable()
        table.define("a", LocationKind.FREE, {"arm": [0, 0, 0]})
        with pytest.raises(ValueError, match="duplicate"):
            table.define("a", LocationKind.FREE, {"arm": [0, 0, 0]})

    def test_unknown_name_raises_with_candidates(self):
        table = LocationTable()
        table.define("a", LocationKind.FREE, {"arm": [0, 0, 0]})
        with pytest.raises(KeyError, match="unknown location"):
            table.get("b")

    def test_unknown_frame_raises(self):
        table = LocationTable()
        loc = table.define("a", LocationKind.FREE, {"arm": [0, 0, 0]})
        with pytest.raises(KeyError, match="no coordinates in frame"):
            loc.coord_for("other")

    def test_set_coord_mutation(self):
        # The Bug D edit surface: coordinates are mutable per frame.
        table = LocationTable()
        loc = table.define("p", LocationKind.DEVICE_INTERIOR, {"arm": [0.1, 0.2, 0.10]})
        loc.set_coord("arm", [0.1, 0.2, 0.08])
        assert loc.coord_for("arm")[2] == pytest.approx(0.08)

    def test_interiors_of(self):
        table = LocationTable()
        table.define("in1", LocationKind.DEVICE_INTERIOR, {"arm": [0, 0, 0]}, device="d")
        table.define("ap", LocationKind.DEVICE_APPROACH, {"arm": [0, 0, 0]}, device="d")
        table.define("in2", LocationKind.DEVICE_INTERIOR, {"arm": [1, 0, 0]}, device="e")
        names = [l.name for l in table.interiors_of("d")]
        assert names == ["in1"]


class TestLabWorldRegistry:
    def test_duplicate_device_rejected(self):
        world = make_world()
        world.add_device(Device("x"))
        with pytest.raises(ValueError, match="duplicate"):
            world.add_device(Device("x"))

    def test_footprint_attached_and_named(self):
        world = make_world()
        device = world.add_device(Device("x"), footprint=Cuboid((0, 0, 0), (1, 1, 1)))
        assert device.footprint.name == "x"
        assert world.footprint("x") is not None

    def test_footprints_exclude(self):
        world = make_world()
        world.add_device(Device("a"), footprint=Cuboid((0, 0, 0), (1, 1, 1)))
        world.add_device(Device("b"), footprint=Cuboid((1, 1, 1), (2, 2, 2)))
        names = {box.name for box in world.footprints(exclude=["a"])}
        assert names == {"b"}

    def test_to_world_uses_registered_frame(self):
        world = make_world()
        world.register_frame("arm2", translation([1, 0, 0]))
        assert world.to_world([0, 0, 0], "arm2") == (1.0, 0.0, 0.0)

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError, match="unknown device"):
            make_world().device("ghost")


class TestOccupancy:
    def test_place_and_remove(self):
        world = make_world()
        world.locations.define("slot", LocationKind.GRID_SLOT, {"arm": [0, 0, 0.1]})
        vial = world.add_vial(Vial("v"), at_location="slot")
        assert world.occupant("slot") == "v"
        assert vial.resting_at == "slot"
        world.remove_vial("v")
        assert world.occupant("slot") is None
        assert vial.resting_at is None

    def test_moving_vial_frees_old_slot(self):
        world = make_world()
        world.locations.define("a", LocationKind.GRID_SLOT, {"arm": [0, 0, 0.1]})
        world.locations.define("b", LocationKind.GRID_SLOT, {"arm": [0.1, 0, 0.1]})
        world.add_vial(Vial("v"), at_location="a")
        world.place_vial("v", "b")
        assert world.occupant("a") is None
        assert world.occupant("b") == "v"

    def test_forced_double_occupancy_breaks_glassware(self):
        # The §I footnote scenario: a new vial dropped onto the
        # uncollected one.
        world = make_world()
        world.locations.define("slot", LocationKind.DEVICE_INTERIOR, {"arm": [0, 0, 0.1]}, device="d")
        world.add_vial(Vial("old"), at_location="slot")
        world.add_vial(Vial("new"))
        world.place_vial("new", "slot")
        assert world.vial("old").broken
        assert any(d.kind == "vial_collision" for d in world.damage_log)
        assert world.worst_damage().severity is DamageSeverity.MEDIUM_LOW

    def test_vial_inside_device(self):
        world = make_world()
        world.locations.define("in", LocationKind.DEVICE_INTERIOR, {"arm": [0, 0, 0.1]}, device="doser")
        world.add_vial(Vial("v"), at_location="in")
        found = world.vial_inside_device("doser")
        assert found is not None and found.name == "v"
        assert world.vial_inside_device("other") is None


class TestRobotContainment:
    def test_entered_and_left(self):
        world = make_world()
        world.robot_entered("arm", "doser")
        assert world.robot_inside("arm") == "doser"
        assert world.robots_inside("doser") == ("arm",)
        world.robot_left("arm")
        assert world.robot_inside("arm") is None
        assert world.robots_inside("doser") == ()


class TestDamageLog:
    def test_worst_damage_by_rank(self):
        world = make_world()
        world.record_damage(DamageEvent(DamageSeverity.LOW, "spill", "x"))
        world.record_damage(DamageEvent(DamageSeverity.HIGH, "crash", "y"))
        world.record_damage(DamageEvent(DamageSeverity.MEDIUM_LOW, "drop", "z"))
        assert world.worst_damage().kind == "crash"

    def test_clear_damage(self):
        world = make_world()
        world.record_damage(DamageEvent(DamageSeverity.LOW, "spill", "x"))
        world.clear_damage()
        assert world.damage_log == ()
        assert world.worst_damage() is None

    def test_severity_ranks_ordered(self):
        ranks = [
            DamageSeverity.LOW.rank,
            DamageSeverity.MEDIUM_LOW.rank,
            DamageSeverity.MEDIUM_HIGH.rank,
            DamageSeverity.HIGH.rank,
        ]
        assert ranks == sorted(ranks) == [0, 1, 2, 3]
