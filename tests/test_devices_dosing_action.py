"""Ground-truth tests for dosing systems and action devices."""

import pytest

from repro.devices.action_device import (
    Centrifuge,
    Decapper,
    Hotplate,
    Thermoshaker,
    UltrasonicNozzle,
    XRFStation,
)
from repro.devices.base import DoorState
from repro.devices.container import Vial
from repro.devices.dosing import SolidDosingDevice, SyringePump
from repro.devices.locations import LocationKind
from repro.devices.world import DamageSeverity, LabWorld
from repro.geometry.shapes import Cuboid
from repro.geometry.transforms import identity
from repro.geometry.walls import Workspace


@pytest.fixture()
def world():
    w = LabWorld("t", Workspace(bounds=Cuboid((-2, -2, -1), (2, 2, 2), name="room")))
    w.register_frame("arm", identity())
    w.locations.define(
        "doser_in", LocationKind.DEVICE_INTERIOR, {"arm": [0, 0.4, 0.1]}, device="doser"
    )
    w.locations.define(
        "plate_top", LocationKind.DEVICE_INTERIOR, {"arm": [0.3, 0, 0.15]}, device="plate"
    )
    w.locations.define(
        "spin_slot", LocationKind.DEVICE_INTERIOR, {"arm": [-0.3, 0, 0.12]}, device="spin"
    )
    return w


class TestSolidDosingDevice:
    def test_dose_into_open_vial(self, world):
        doser = SolidDosingDevice("doser", world)
        world.add_device(doser)
        world.add_vial(Vial("v", stoppered=False), at_location="doser_in")
        doser.run_action(delay=3, quantity=5)
        assert world.vial("v").contents.solid_mg == pytest.approx(5.0)
        assert not world.damage_log
        assert doser.status()["dispensed_mg"] == pytest.approx(5.0)

    def test_dose_with_no_vial_spills(self, world):
        doser = world.add_device(SolidDosingDevice("doser", world))
        doser.dose_solid(5.0)
        assert any(d.kind == "solid_spill" for d in world.damage_log)
        assert world.worst_damage().severity is DamageSeverity.LOW

    def test_overdose_records_spill(self, world):
        doser = world.add_device(SolidDosingDevice("doser", world))
        world.add_vial(Vial("v", capacity_solid_mg=10.0, stoppered=False), at_location="doser_in")
        doser.dose_solid(15.0)
        assert world.vial("v").contents.solid_mg == pytest.approx(10.0)
        assert any(d.kind == "solid_spill" for d in world.damage_log)

    def test_set_door_validates_property(self, world):
        doser = world.add_device(SolidDosingDevice("doser", world))
        with pytest.raises(ValueError, match="door property"):
            doser.set_door("angle", "open")

    def test_stop_action_deactivates(self, world):
        doser = world.add_device(SolidDosingDevice("doser", world))
        world.add_vial(Vial("v", stoppered=False), at_location="doser_in")
        doser.run_action(quantity=2)
        assert doser.active
        doser.stop_action()
        assert not doser.active

    def test_status_reports_door_and_activity(self, world):
        doser = world.add_device(
            SolidDosingDevice("doser", world, door_initial=DoorState.CLOSED)
        )
        report = doser.status()
        assert report["door"] == "closed"
        assert report["active"] is False


class TestSyringePump:
    def test_dose_into_vial_with_solid(self, world):
        pump = world.add_device(SyringePump("pump", world, dispense_location="plate_top"))
        vial = Vial("v", stoppered=False)
        vial.contents.solid_mg = 5.0
        world.add_vial(vial, at_location="plate_top")
        pump.dose_initial_solvent(4.0)
        assert vial.contents.liquid_ml == pytest.approx(4.0)
        assert not world.damage_log

    def test_dose_onto_empty_location_spills(self, world):
        pump = world.add_device(SyringePump("pump", world, dispense_location="plate_top"))
        pump.dose_solvent(3.0)
        assert any(d.kind == "solvent_spill" for d in world.damage_log)

    def test_dose_into_solidless_vial_wastes_chemicals(self, world):
        pump = world.add_device(SyringePump("pump", world, dispense_location="plate_top"))
        world.add_vial(Vial("v", stoppered=False), at_location="plate_top")
        pump.dose_solvent(3.0)
        assert any(d.kind == "wasted_chemicals" for d in world.damage_log)


class TestHotplateAndShaker:
    def test_clean_run_with_loaded_vial(self, world):
        plate = world.add_device(Hotplate("plate", world, threshold=120.0))
        vial = Vial("v", stoppered=False)
        vial.contents.solid_mg = 5.0
        world.add_vial(vial, at_location="plate_top")
        plate.stir_solution(60.0)
        assert plate.active
        assert plate.action_value == 60.0
        assert not world.damage_log

    def test_empty_run_recorded(self, world):
        plate = world.add_device(Hotplate("plate", world))
        plate.stir_solution(60.0)
        assert any(d.kind == "empty_run" for d in world.damage_log)

    def test_empty_container_recorded(self, world):
        plate = world.add_device(Hotplate("plate", world))
        world.add_vial(Vial("v", stoppered=False), at_location="plate_top")
        plate.stir_solution(60.0)
        assert any(d.kind == "empty_container_run" for d in world.damage_log)

    def test_overheat_is_high_severity(self, world):
        plate = world.add_device(Hotplate("plate", world, threshold=120.0))
        vial = Vial("v", stoppered=False)
        vial.contents.solid_mg = 5.0
        world.add_vial(vial, at_location="plate_top")
        plate.stir_solution(200.0)
        assert any(d.kind == "threshold_exceeded" for d in world.damage_log)
        assert world.worst_damage().severity is DamageSeverity.HIGH

    def test_shaker_shake_command(self, world):
        shaker = world.add_device(Thermoshaker("shaker", world, threshold=1500.0))
        shaker.shake(800.0)
        assert shaker.active and shaker.action_value == 800.0


class TestCentrifuge:
    def _loaded_centrifuge(self, world, solid=5.0, liquid=5.0, stoppered=True):
        spin = world.add_device(Centrifuge("spin", world))
        vial = Vial("v", stoppered=stoppered)
        vial.contents.solid_mg = solid
        vial.contents.liquid_ml = liquid
        world.add_vial(vial, at_location="spin_slot")
        return spin, vial

    def test_clean_spin(self, world):
        spin, _ = self._loaded_centrifuge(world)
        spin.close_door()
        spin.start_action(3000.0)
        assert not world.damage_log

    def test_open_lid_spin_is_high_severity(self, world):
        spin, _ = self._loaded_centrifuge(world)
        spin.start_action(3000.0)  # lid open (initial state)
        assert any(d.kind == "open_lid_spin" for d in world.damage_log)

    def test_unstoppered_vial_sprays(self, world):
        spin, _ = self._loaded_centrifuge(world, stoppered=False)
        spin.close_door()
        spin.start_action(3000.0)
        assert any(d.kind == "centrifuge_spray" for d in world.damage_log)

    def test_single_phase_imbalance(self, world):
        spin, _ = self._loaded_centrifuge(world, liquid=0.0)
        spin.close_door()
        spin.start_action(3000.0)
        assert any(d.kind == "rotor_imbalance" for d in world.damage_log)

    def test_rotor_indexing(self, world):
        spin = world.add_device(Centrifuge("spin", world))
        spin.rotate_rotor("E")
        assert spin.red_dot == "E"
        assert spin.status()["red_dot"] == "E"
        with pytest.raises(ValueError, match="compass"):
            spin.rotate_rotor("NE")


class TestOtherActionDevices:
    def test_decapper_decap_and_cap(self, world):
        world.locations.define(
            "decap_slot", LocationKind.DEVICE_INTERIOR, {"arm": [0.2, 0.2, 0.1]},
            device="dc",
        )
        dc = world.add_device(Decapper("dc", world))
        vial = world.add_vial(Vial("v", stoppered=True), at_location="decap_slot")
        dc.decap()
        assert not vial.stoppered
        dc.cap()
        assert vial.stoppered

    def test_decapper_without_vial_is_noop(self, world):
        dc = world.add_device(Decapper("dc", world))
        dc.decap()
        assert not world.damage_log

    def test_nozzle_does_not_need_container(self, world):
        nozzle = world.add_device(UltrasonicNozzle("n", world, threshold=50.0))
        nozzle.start_action(30.0)
        assert not world.damage_log
        nozzle.start_action(80.0)
        assert any(d.kind == "threshold_exceeded" for d in world.damage_log)

    def test_xrf_open_shutter_exposure(self, world):
        xrf = world.add_device(XRFStation("x", world))
        xrf.open_door()
        xrf.start_action(10.0)
        assert any(d.kind == "radiation_exposure" for d in world.damage_log)

    def test_xrf_closed_shutter_is_safe(self, world):
        xrf = world.add_device(XRFStation("x", world))
        xrf.start_action(10.0)
        assert not world.damage_log

    def test_door_on_doorless_device_raises(self, world):
        plate = world.add_device(Hotplate("plate", world))
        with pytest.raises(AttributeError, match="no door"):
            plate.open_door()
