"""Differential suite: the batch collision engine vs the scalar reference.

The scalar functions in :mod:`repro.geometry.collision` are the reference
implementation; :class:`~repro.geometry.batch.BatchCollisionEngine` is the
vectorized fast path that the Extended Simulator actually runs.  The fast
path is only admissible because this suite pins **exact** agreement —
bit-equal entry times, identical hit/miss decisions, identical first-hit
ordering — across randomized scenes (seeded ``numpy.random`` bulk sweeps
plus hypothesis-driven edge exploration), including the degenerate cases:
zero-length segments, axis-parallel segments, segments grazing a face or
ending exactly on one, and nonzero margins.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.batch import BatchCollisionEngine
from repro.geometry.collision import (
    first_collision,
    segment_cuboid_entry_time,
    segment_intersects_cuboid,
)
from repro.geometry.shapes import Cuboid


def random_scene(rng, n_cuboids, with_margins=False):
    """A list of random cuboids (and per-cuboid margins)."""
    cuboids = []
    margins = []
    for i in range(n_cuboids):
        lo = rng.uniform(-1.5, 1.0, 3)
        hi = lo + rng.uniform(0.0, 1.2, 3)
        cuboids.append(Cuboid(tuple(lo), tuple(hi), name=f"box_{i}"))
        margins.append(float(rng.uniform(0.0, 0.2)) if with_margins else 0.0)
    return cuboids, margins


def random_segments(rng, n_segments):
    """Random segments with boundary-degenerate cases mixed in."""
    starts = rng.uniform(-2.0, 2.0, (n_segments, 3))
    ends = rng.uniform(-2.0, 2.0, (n_segments, 3))
    for s in range(n_segments):
        mode = s % 7
        if mode == 1:  # zero-length segment
            ends[s] = starts[s]
        elif mode == 2:  # axis-parallel segment
            axis = int(rng.integers(3))
            ends[s][axis] = starts[s][axis]
        elif mode == 3:  # two axes frozen (parallel to an edge direction)
            keep = int(rng.integers(3))
            for axis in range(3):
                if axis != keep:
                    ends[s][axis] = starts[s][axis]
    return starts, ends


class TestSegmentEntryAgreement:
    """segment_entry_times == segment_cuboid_entry_time on every pair."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("with_margins", [False, True])
    def test_randomized_pairs_agree_exactly(self, seed, with_margins):
        rng = np.random.default_rng(seed)
        cuboids, margins = random_scene(rng, 12, with_margins=with_margins)
        starts, ends = random_segments(rng, 24)
        # Snap some coordinates exactly onto cuboid faces to probe the
        # closed-boundary convention (grazing, ending on a face).
        for s in range(0, len(starts), 5):
            box = cuboids[int(rng.integers(len(cuboids)))]
            axis = int(rng.integers(3))
            starts[s][axis] = box.lo[axis]
            ends[s + 1 if s + 1 < len(ends) else s][axis] = box.hi[axis]

        engine = BatchCollisionEngine(cuboids, margin=margins)
        times = engine.segment_entry_times(starts, ends)

        disagreements = []
        for s in range(len(starts)):
            for n, (cuboid, margin) in enumerate(zip(cuboids, margins)):
                box = cuboid.inflated(margin) if margin > 0 else cuboid
                want = segment_cuboid_entry_time(starts[s], ends[s], box)
                got = None if np.isnan(times[s, n]) else float(times[s, n])
                if want != got:
                    disagreements.append((s, n, want, got))
        assert disagreements == []

    def test_case_count_meets_floor(self):
        """The acceptance criterion demands >= 1000 randomized pairs."""
        rng = np.random.default_rng(99)
        cuboids, margins = random_scene(rng, 25, with_margins=True)
        starts, ends = random_segments(rng, 60)
        engine = BatchCollisionEngine(cuboids, margin=margins)
        times = engine.segment_entry_times(starts, ends)
        checked = 0
        for s in range(len(starts)):
            for n, (cuboid, margin) in enumerate(zip(cuboids, margins)):
                box = cuboid.inflated(margin) if margin > 0 else cuboid
                want = segment_cuboid_entry_time(starts[s], ends[s], box)
                got = None if np.isnan(times[s, n]) else float(times[s, n])
                assert want == got, (s, n, want, got)
                checked += 1
        assert checked >= 1000

    @given(
        p0=st.tuples(*[st.floats(-2, 2, allow_nan=False) for _ in range(3)]),
        p1=st.tuples(*[st.floats(-2, 2, allow_nan=False) for _ in range(3)]),
        lo=st.tuples(*[st.floats(-1.5, 0.5, allow_nan=False) for _ in range(3)]),
        size=st.tuples(*[st.floats(0, 1.5, allow_nan=False) for _ in range(3)]),
        margin=st.floats(0, 0.3, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_hypothesis_single_pair(self, p0, p1, lo, size, margin):
        hi = tuple(a + b for a, b in zip(lo, size))
        cuboid = Cuboid(lo, hi, name="hyp")
        engine = BatchCollisionEngine([cuboid], margin=margin)
        box = cuboid.inflated(margin) if margin > 0 else cuboid
        want = segment_cuboid_entry_time(p0, p1, box)
        t = engine.segment_entry_times([p0], [p1])[0, 0]
        got = None if np.isnan(t) else float(t)
        assert want == got
        assert segment_intersects_cuboid(p0, p1, cuboid, margin=margin) == (
            got is not None
        )


class TestDegenerateGeometry:
    BOX = Cuboid((0, 0, 0), (1, 1, 1), name="unit")

    def check_pair(self, p0, p1):
        engine = BatchCollisionEngine([self.BOX])
        t = engine.segment_entry_times([p0], [p1])[0, 0]
        got = None if np.isnan(t) else float(t)
        assert got == segment_cuboid_entry_time(p0, p1, self.BOX)
        return got

    def test_zero_length_inside(self):
        assert self.check_pair([0.5, 0.5, 0.5], [0.5, 0.5, 0.5]) == 0.0

    def test_zero_length_on_corner(self):
        assert self.check_pair([1.0, 1.0, 1.0], [1.0, 1.0, 1.0]) == 0.0

    def test_zero_length_outside(self):
        assert self.check_pair([1.5, 0.5, 0.5], [1.5, 0.5, 0.5]) is None

    def test_axis_parallel_through(self):
        assert self.check_pair([-1, 0.5, 0.5], [2, 0.5, 0.5]) == pytest.approx(1 / 3)

    def test_axis_parallel_sliding_on_face(self):
        assert self.check_pair([-1, 0.5, 1.0], [2, 0.5, 1.0]) is not None

    def test_axis_parallel_outside_slab(self):
        assert self.check_pair([-1, 1.5, 0.5], [2, 1.5, 0.5]) is None

    def test_graze_edge(self):
        assert self.check_pair([-1, -1, 0.5], [1, 1, 0.5]) == 0.5

    def test_ends_exactly_on_face(self):
        assert self.check_pair([-1, 0.5, 0.5], [0.0, 0.5, 0.5]) == 1.0

    def test_subepsilon_segment_ending_on_face(self):
        # Regression for the parallel-branch epsilon: a displacement below
        # the old 1e-15 threshold used to be classified parallel and
        # rejected via p0, even though the endpoint lies exactly on the
        # face that ``contains`` counts as inside.
        got = self.check_pair([-5e-16, 0.5, 0.5], [0.0, 0.5, 0.5])
        assert got == 1.0


class TestFirstHitAgreement:
    """polyline_first_hit == first_collision: obstacle, segment, t, point."""

    @pytest.mark.parametrize("seed", [7, 8, 9])
    @pytest.mark.parametrize("margin", [0.0, 0.07])
    def test_random_polylines(self, seed, margin):
        rng = np.random.default_rng(seed)
        cuboids, _ = random_scene(rng, 10)
        engine = BatchCollisionEngine(cuboids, margin=margin)
        for _ in range(40):
            waypoints = rng.uniform(-2.0, 2.0, (int(rng.integers(2, 8)), 3))
            want = first_collision(waypoints, cuboids, margin=margin)
            got = engine.polyline_first_hit(waypoints)
            if want is None:
                assert got is None
            else:
                assert got is not None
                assert (got.obstacle, got.waypoint_index, got.t) == (
                    want.obstacle,
                    want.waypoint_index,
                    want.t,
                )
                assert got.point == want.point

    def test_tie_breaks_to_first_cuboid(self):
        # Two identical cuboids: the scalar loop keeps the first iterated.
        twin_a = Cuboid((0, 0, 0), (1, 1, 1), name="twin_a")
        twin_b = Cuboid((0, 0, 0), (1, 1, 1), name="twin_b")
        waypoints = [[-1, 0.5, 0.5], [2, 0.5, 0.5]]
        want = first_collision(waypoints, [twin_a, twin_b])
        got = BatchCollisionEngine([twin_a, twin_b]).polyline_first_hit(waypoints)
        assert want is not None and got is not None
        assert got.obstacle == want.obstacle == "twin_a"

    def test_empty_engine_and_short_polyline(self):
        engine = BatchCollisionEngine([])
        assert engine.polyline_first_hit([[0, 0, 0], [1, 1, 1]]) is None
        engine = BatchCollisionEngine([Cuboid((0, 0, 0), (1, 1, 1))])
        assert engine.polyline_first_hit([[0.5, 0.5, 0.5]]) is None


class TestStackedPolylineAgreement:
    """polylines_hit_indices row s == polyline_first_hit(paths[s]).

    This is the (S, P, 3) query the Extended Simulator's full-arm link
    sweep feeds straight from the batched FK kernel."""

    @pytest.mark.parametrize("seed", [11, 12])
    @pytest.mark.parametrize("margin", [0.0, 0.045])
    def test_random_stacks(self, seed, margin):
        rng = np.random.default_rng(seed)
        cuboids, _ = random_scene(rng, 8)
        engine = BatchCollisionEngine(cuboids, margin=margin)
        paths = rng.uniform(-2.0, 2.0, (30, 5, 3))
        hits = engine.polylines_hit_indices(paths)
        assert hits.shape == (30,)
        for s in range(30):
            want = engine.polyline_first_hit(paths[s])
            if want is None:
                assert hits[s] == -1
            else:
                assert engine.names[hits[s]] == want.obstacle

    def test_empty_cases(self):
        engine = BatchCollisionEngine([Cuboid((0, 0, 0), (1, 1, 1))])
        assert np.array_equal(
            engine.polylines_hit_indices(np.zeros((3, 1, 3))), [-1, -1, -1]
        )
        empty = BatchCollisionEngine([])
        assert np.array_equal(
            empty.polylines_hit_indices(np.zeros((2, 4, 3))), [-1, -1]
        )
        with pytest.raises(ValueError, match=r"\(S, P, 3\)"):
            engine.polylines_hit_indices(np.zeros((4, 3)))


class TestIncrementalUpdates:
    """add/update/remove keep the packed arrays in lockstep with scalar."""

    def test_update_moves_a_cuboid(self):
        rng = np.random.default_rng(42)
        cuboids, _ = random_scene(rng, 5)
        engine = BatchCollisionEngine(cuboids, margin=0.05)
        # A held vial moves: replace row 2 and re-check the whole scene.
        moved = cuboids[2].translated((0.3, -0.2, 0.1))
        engine.update(2, moved)
        cuboids[2] = moved
        starts, ends = random_segments(rng, 15)
        times = engine.segment_entry_times(starts, ends)
        for s in range(len(starts)):
            for n, cuboid in enumerate(cuboids):
                want = segment_cuboid_entry_time(starts[s], ends[s], cuboid.inflated(0.05))
                got = None if np.isnan(times[s, n]) else float(times[s, n])
                assert want == got

    def test_add_and_remove(self):
        box_a = Cuboid((0, 0, 0), (1, 1, 1), name="a")
        box_b = Cuboid((2, 0, 0), (3, 1, 1), name="b")
        engine = BatchCollisionEngine([box_a])
        idx = engine.add(box_b)
        assert idx == 1 and len(engine) == 2
        hit = engine.polyline_first_hit([[2.5, 0.5, -1], [2.5, 0.5, 2]])
        assert hit is not None and hit.obstacle == "b"
        engine.remove(engine.index_of("a"))
        assert engine.names == ["b"]
        assert engine.polyline_first_hit([[0.5, 0.5, -1], [0.5, 0.5, 2]]) is None

    def test_update_can_change_margin(self):
        box = Cuboid((0, 0, 0), (1, 1, 1), name="box")
        engine = BatchCollisionEngine([box])
        a, b = [-1, 0.5, 1.05], [2, 0.5, 1.05]
        assert np.isnan(engine.segment_entry_times([a], [b])[0, 0])
        engine.update(0, box, margin=0.1)
        assert not np.isnan(engine.segment_entry_times([a], [b])[0, 0])


class TestContainment:
    def test_contains_matches_scalar(self):
        rng = np.random.default_rng(5)
        cuboids, margins = random_scene(rng, 8, with_margins=True)
        engine = BatchCollisionEngine(cuboids, margin=margins)
        points = rng.uniform(-2, 2, (50, 3))
        # Snap some points exactly onto faces.
        points[0] = cuboids[0].lo
        points[1] = cuboids[1].hi
        matrix = engine.contains_points(points)
        for p in range(len(points)):
            for n, (cuboid, margin) in enumerate(zip(cuboids, margins)):
                box = cuboid.inflated(margin) if margin > 0 else cuboid
                assert matrix[p, n] == box.contains(points[p])

    def test_first_containing_matches_loop_order(self):
        overlapping = [
            Cuboid((0, 0, 0), (2, 2, 2), name="big"),
            Cuboid((0.5, 0.5, 0.5), (1.5, 1.5, 1.5), name="inner"),
        ]
        engine = BatchCollisionEngine(overlapping)
        idx = engine.first_containing([[1.0, 1.0, 1.0], [5, 5, 5]])
        assert idx[0] == 0  # lowest index wins, like the scalar loop
        assert idx[1] == -1


class TestExtendedSimulatorDifferential:
    """Batch and scalar trajectory sweeps return identical verdicts."""

    def test_random_moves_agree(self):
        from repro.core.actions import ActionCall, ActionLabel
        from repro.lab.hein import build_hein_deck, make_hein_rabit
        from repro.simulator.extended import ExtendedSimulator

        deck = build_hein_deck()
        rabit, proxies, _ = make_hein_rabit(deck)
        batch = ExtendedSimulator({"ur3e": deck.ur3e}, use_batch=True)
        scalar = ExtendedSimulator({"ur3e": deck.ur3e}, use_batch=False)

        rng = np.random.default_rng(11)
        verdicts = []
        for i in range(60):
            target = (
                float(rng.uniform(-0.1, 0.45)),
                float(rng.uniform(-0.2, 0.45)),
                float(rng.uniform(0.0, 0.45)),
            )
            call = ActionCall(
                ActionLabel.MOVE_ROBOT, "ur3e", robot="ur3e", target=target
            )
            if i % 3 == 0:
                rabit.state.set("robot_holding", "ur3e", "vial_1")
            else:
                rabit.state.set("robot_holding", "ur3e", None)
            want = scalar.validate_trajectory(
                call, rabit.state, rabit.model, account_held_objects=True
            )
            got = batch.validate_trajectory(
                call, rabit.state, rabit.model, account_held_objects=True
            )
            assert got == want, (target, want, got)
            verdicts.append(want)
        # The sweep must exercise both outcomes to mean anything.
        assert any(v is None for v in verdicts)
        assert any(v is not None for v in verdicts)

    def test_engine_cache_invalidated_by_model_mutation(self):
        from repro.core.actions import ActionCall, ActionLabel
        from repro.core.model import ObstacleModel
        from repro.lab.hein import build_hein_deck, make_hein_rabit
        from repro.simulator.extended import ExtendedSimulator

        deck = build_hein_deck()
        rabit, proxies, _ = make_hein_rabit(deck)
        checker = ExtendedSimulator({"ur3e": deck.ur3e}, use_batch=True)
        call = ActionCall(
            ActionLabel.MOVE_ROBOT, "ur3e", robot="ur3e", target=(0.3, -0.05, 0.28)
        )
        assert checker.validate_trajectory(
            call, rabit.state, rabit.model, account_held_objects=True
        ) is None
        # Drop a wall of a cuboid across the whole approach: a stale packed
        # engine would still pass; the revision bump must rebuild it.
        rabit.model.add_obstacle(
            ObstacleModel(
                name="surprise_block",
                frames={"ur3e": Cuboid((-1, -1, -1), (1, 1, 1), name="surprise_block")},
            )
        )
        problem = checker.validate_trajectory(
            call, rabit.state, rabit.model, account_held_objects=True
        )
        assert problem is not None and "surprise_block" in problem
