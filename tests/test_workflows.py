"""Tests for the workflow scripting layer itself."""

import pytest

from repro.core.errors import Alert, AlertKind, SafetyViolation
from repro.kinematics.arm import UnreachableTargetError
from repro.lab.workflows import (
    ScriptLine,
    build_centrifuge_workflow,
    build_solubility_workflow,
    build_testbed_workflow,
    pick_up_object,
    place_object,
    run_workflow,
)


def line(line_id, fn):
    return ScriptLine(line_id, line_id, fn)


class TestRunWorkflow:
    def test_runs_all_lines_in_order(self):
        seen = []
        lines = [line(f"l{i}", lambda i=i: seen.append(i)) for i in range(4)]
        result = run_workflow(lines)
        assert result.completed
        assert seen == [0, 1, 2, 3]
        assert result.executed_lines == ["l0", "l1", "l2", "l3"]

    def test_stops_on_safety_violation(self):
        alert = Alert(AlertKind.INVALID_COMMAND, "nope", rule_id="G1")

        def boom():
            raise SafetyViolation(alert)

        result = run_workflow([line("ok", lambda: None), line("bad", boom), line("after", lambda: None)])
        assert not result.completed
        assert result.stopped_by_rabit
        assert result.alert is alert
        assert result.executed_lines == ["ok"]

    def test_stops_on_device_error(self):
        def boom():
            raise UnreachableTargetError("ned2", (0, 0, 5), 3.0)

        result = run_workflow([line("bad", boom)])
        assert not result.completed
        assert result.stopped_by_device and not result.stopped_by_rabit
        assert "ned2" in result.device_error

    def test_other_exceptions_propagate(self):
        def boom():
            raise RuntimeError("unexpected")

        with pytest.raises(RuntimeError):
            run_workflow([line("bad", boom)])


class TestWorkflowBuilders:
    def test_solubility_line_ids_unique(self):
        from repro.lab.hein import build_hein_deck, make_hein_rabit

        _, proxies, _ = make_hein_rabit(build_hein_deck())
        lines = build_solubility_workflow(proxies)
        ids = [l.line_id for l in lines]
        assert len(ids) == len(set(ids))
        assert "dose_solid" in ids and "place_vial_centrifuge" in ids

    def test_testbed_line_ids_cover_fig5_annotations(self):
        from repro.testbed.deck import build_testbed_deck, make_testbed_rabit

        _, proxies, _ = make_testbed_rabit(build_testbed_deck())
        ids = [l.line_id for l in build_testbed_workflow(proxies)]
        # The mutation anchor points of Bugs A and C must exist.
        assert "open_door_after_dose" in ids  # Fig. 5 line 23 (Bug A)
        assert "pick_grid" in ids  # Fig. 5 line 15 (Bug C)
        assert "place_grid" in ids  # Fig. 5 line 26

    def test_centrifuge_leg_has_cap_line(self):
        from repro.testbed.deck import build_testbed_deck, make_testbed_rabit

        _, proxies, _ = make_testbed_rabit(build_testbed_deck())
        ids = [l.line_id for l in build_centrifuge_workflow(proxies)]
        assert ids[0] == "cap_vial"  # the H6 deletion target
        assert "spin" in ids

    def test_dissolution_rounds_scale_line_count(self):
        from repro.lab.hein import build_hein_deck, make_hein_rabit

        _, proxies, _ = make_hein_rabit(build_hein_deck())
        short = build_solubility_workflow(proxies, dissolution_rounds=1)
        long = build_solubility_workflow(proxies, dissolution_rounds=3)
        assert len(long) == len(short) + 6  # 3 lines per extra round


class TestHelpers:
    def test_pick_place_helpers_trace_constituents(self):
        from repro.testbed.deck import build_testbed_deck, make_testbed_rabit

        deck = build_testbed_deck()
        _, proxies, trace = make_testbed_rabit(deck)
        pick_up_object(proxies["viperx"], "grid_nw_viperx_safe", "grid_nw_viperx")
        methods = [r.method for r in trace]
        assert methods == [
            "move_to_location",
            "open_gripper",
            "move_to_location",
            "close_gripper",
            "move_to_location",
        ]
        assert deck.viperx.holding == "vial_t1"
        place_object(proxies["viperx"], "grid_nw_viperx_safe", "grid_nw_viperx")
        assert deck.viperx.holding is None
        assert deck.world.occupant("grid_nw_viperx") == "vial_t1"
