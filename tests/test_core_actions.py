"""Unit tests for the transition table (Table II) postconditions."""

import pytest

from repro.core.actions import (
    ActionCall,
    ActionLabel,
    TransitionContext,
    TransitionTable,
)
from repro.core.state import LabState


@pytest.fixture()
def table():
    return TransitionTable()


@pytest.fixture()
def ctx():
    interiors = {"doser_in": "doser", "plate_top": "plate"}
    loads = {"doser": "doser_in", "plate": "plate_top", "pump": "plate_top"}
    return TransitionContext(
        interior_owner=lambda loc: interiors.get(loc),
        load_location=lambda dev: loads.get(dev),
    )


class TestTableStructure:
    def test_every_label_has_a_row(self, table):
        for label in ActionLabel:
            row = table.row(label)
            assert row.preconditions and row.postconditions

    def test_rows_enumerable(self, table):
        assert len(table.rows()) == len(ActionLabel)


class TestMovePostconditions:
    def test_move_robot_clears_containment(self, table, ctx):
        state = LabState()
        state.set("robot_inside", "arm", "doser")
        call = ActionCall(ActionLabel.MOVE_ROBOT, "arm", robot="arm", location="slot")
        expected = table.expected_state(state, call, ctx)
        assert expected.get("robot_inside", "arm") is None

    def test_move_inside_sets_containment(self, table, ctx):
        call = ActionCall(
            ActionLabel.MOVE_ROBOT_INSIDE, "arm", robot="arm", location="doser_in"
        )
        expected = table.expected_state(LabState(), call, ctx)
        assert expected.get("robot_inside", "arm") == "doser"

    def test_expected_state_does_not_mutate_current(self, table, ctx):
        state = LabState()
        call = ActionCall(
            ActionLabel.MOVE_ROBOT_INSIDE, "arm", robot="arm", location="doser_in"
        )
        table.expected_state(state, call, ctx)
        assert state.get("robot_inside", "arm") is None


class TestPickPlacePostconditions:
    def test_pick_takes_tracked_vial(self, table, ctx):
        state = LabState()
        state.set("container_at", "v1", "slot")
        call = ActionCall(ActionLabel.PICK_OBJECT, "arm", robot="arm", location="slot")
        expected = table.expected_state(state, call, ctx)
        assert expected.get("robot_holding", "arm") == "v1"
        assert expected.get("container_at", "v1") is None
        assert expected.get("gripper", "arm") == "closed"

    def test_pick_at_interior_sets_containment(self, table, ctx):
        state = LabState()
        state.set("container_at", "v1", "doser_in")
        call = ActionCall(
            ActionLabel.PICK_OBJECT, "arm", robot="arm", location="doser_in"
        )
        expected = table.expected_state(state, call, ctx)
        assert expected.get("robot_inside", "arm") == "doser"

    def test_place_rests_held_vial(self, table, ctx):
        state = LabState()
        state.set("robot_holding", "arm", "v1")
        call = ActionCall(ActionLabel.PLACE_OBJECT, "arm", robot="arm", location="slot")
        expected = table.expected_state(state, call, ctx)
        assert expected.get("robot_holding", "arm") is None
        assert expected.get("container_at", "v1") == "slot"
        assert expected.get("gripper", "arm") == "open"

    def test_open_gripper_without_belief_changes_nothing_tracked(self, table, ctx):
        state = LabState()
        state.set("container_at", "v1", "slot")
        call = ActionCall(ActionLabel.OPEN_GRIPPER, "arm", robot="arm", location="slot")
        expected = table.expected_state(state, call, ctx)
        assert expected.get("container_at", "v1") == "slot"
        assert expected.get("robot_holding", "arm") is None

    def test_close_gripper_claims_vial_at_matched_location(self, table, ctx):
        state = LabState()
        state.set("container_at", "v1", "slot")
        call = ActionCall(
            ActionLabel.CLOSE_GRIPPER, "arm", robot="arm", location="slot"
        )
        expected = table.expected_state(state, call, ctx)
        assert expected.get("robot_holding", "arm") == "v1"


class TestDeviceDosePostconditions:
    def test_doors(self, table, ctx):
        open_call = ActionCall(ActionLabel.OPEN_DOOR, "doser")
        state = table.expected_state(LabState(), open_call, ctx)
        assert state.get("door_status", "doser") == "open"
        close_call = ActionCall(ActionLabel.CLOSE_DOOR, "doser")
        state = table.expected_state(state, close_call, ctx)
        assert state.get("door_status", "doser") == "closed"

    def test_start_dosing_updates_contents_and_total(self, table, ctx):
        state = LabState()
        state.set("container_at", "v1", "doser_in")
        state.set("container_solid", "v1", 2.0)
        call = ActionCall(ActionLabel.START_DOSING, "doser", quantity=5.0)
        expected = table.expected_state(state, call, ctx)
        assert expected.get("container_solid", "v1") == pytest.approx(7.0)
        assert expected.get("dispensed_mg", "doser") == pytest.approx(5.0)
        assert expected.get("device_active", "doser") is True

    def test_dose_liquid_updates_believed_liquid(self, table, ctx):
        state = LabState()
        state.set("container_at", "v1", "plate_top")
        call = ActionCall(ActionLabel.DOSE_LIQUID, "pump", quantity=3.0)
        expected = table.expected_state(state, call, ctx)
        assert expected.get("container_liquid", "v1") == pytest.approx(3.0)
        assert expected.get("dispensed_ml", "pump") == pytest.approx(3.0)

    def test_dose_with_no_tracked_vial_only_updates_total(self, table, ctx):
        call = ActionCall(ActionLabel.START_DOSING, "doser", quantity=5.0)
        expected = table.expected_state(LabState(), call, ctx)
        assert expected.get("dispensed_mg", "doser") == pytest.approx(5.0)

    def test_action_device_lifecycle(self, table, ctx):
        start = ActionCall(ActionLabel.START_ACTION, "plate", value=60.0)
        state = table.expected_state(LabState(), start, ctx)
        assert state.get("device_active", "plate") is True
        assert state.get("action_value", "plate") == 60.0
        stop = ActionCall(ActionLabel.STOP_ACTION, "plate")
        state = table.expected_state(state, stop, ctx)
        assert state.get("device_active", "plate") is False

    def test_set_action_value(self, table, ctx):
        call = ActionCall(ActionLabel.SET_ACTION_VALUE, "plate", value=80.0)
        state = table.expected_state(LabState(), call, ctx)
        assert state.get("action_value", "plate") == 80.0

    def test_rotate_rotor(self, table, ctx):
        call = ActionCall(ActionLabel.ROTATE_ROTOR, "spin", direction="W")
        state = table.expected_state(LabState(), call, ctx)
        assert state.get("red_dot", "spin") == "W"

    def test_cap_and_decap(self, table, ctx):
        state = table.expected_state(
            LabState(), ActionCall(ActionLabel.DECAP, "v1"), ctx
        )
        assert state.get("container_stopper", "v1") == "off"
        state = table.expected_state(state, ActionCall(ActionLabel.CAP, "v1"), ctx)
        assert state.get("container_stopper", "v1") == "on"


class TestActionCall:
    def test_describe_includes_key_fields(self):
        call = ActionCall(
            ActionLabel.MOVE_ROBOT,
            "arm",
            robot="arm",
            location="slot",
            target=(0.1, 0.2, 0.3),
        )
        text = call.describe()
        assert "move_robot" in text and "slot" in text and "0.300" in text
