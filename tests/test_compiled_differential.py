"""Compiled-vs-interpreted dispatch differential.

The compiled rulebase is only admissible because it is *provably
inert*: same first-violation verdict — rule id and reason string — for
every command, across every workload.  This suite pins that equivalence
at three granularities:

- **scenario level** — every hand-built rule scenario checked through
  both paths;
- **workload level** — whole recorded traces (verdicts, state deltas,
  virtual timestamps) compared field-by-field, with ``verdict.dispatch``
  the only permitted difference;
- **corpus level** — a sample of the Monte Carlo mutant corpus re-run
  through both paths (``COMPILED_DIFF_SAMPLES`` widens the sample for
  the nightly tier).
"""

import os

import pytest

from repro.core.actions import ActionCall, ActionLabel
from repro.core.rulebase import CheckContext, build_default_rulebase
from repro.core.state import LabState

from tests.test_core_rulebase import tiny_model

#: Sample width for the mutant-corpus differential; the nightly CI tier
#: raises this via the environment to sweep a much larger corpus.
SAMPLES = int(os.environ.get("COMPILED_DIFF_SAMPLES", "8"))


def _verdict(engine, state, call, **flags):
    ctx = CheckContext(state=state, call=call, model=tiny_model(), **flags)
    hit = engine.check_action(ctx)
    return (hit[0].rule_id, hit[1]) if hit else None


def _scenarios():
    """(state, call) pairs covering every rule plus clean passes."""
    cases = []

    def add(call, *entries):
        state = LabState()
        for var, key, value in entries:
            state.set(var, key, value)
        cases.append((state, call))

    arm = dict(robot="arm")
    add(ActionCall(ActionLabel.MOVE_ROBOT_INSIDE, "arm", location="doser_in", **arm),
        ("door_status", "doser", "closed"))                              # G1
    add(ActionCall(ActionLabel.CLOSE_DOOR, "doser"),
        ("robot_inside", "arm", "doser"))                                # G2
    add(ActionCall(ActionLabel.MOVE_ROBOT, "arm", target=(0.3, 0.0, 0.02), **arm))  # G3
    add(ActionCall(ActionLabel.PICK_OBJECT, "arm", location="slot", **arm),
        ("robot_holding", "arm", "v1"))                                  # G4
    add(ActionCall(ActionLabel.START_ACTION, "plate", value=60.0))       # G5
    add(ActionCall(ActionLabel.START_ACTION, "plate", value=60.0),
        ("container_at", "v1", "plate_top"),
        ("container_solid", "v1", 0.0))                                  # G6
    add(ActionCall(ActionLabel.START_DOSING, "doser", quantity=5.0),
        ("container_at", "v1", "doser_in"),
        ("container_stopper", "v1", "on"),
        ("door_status", "doser", "closed"))                              # G7
    add(ActionCall(ActionLabel.START_DOSING, "doser", quantity=15.0),
        ("container_at", "v1", "doser_in"),
        ("container_stopper", "v1", "off"),
        ("door_status", "doser", "closed"))                              # G8
    add(ActionCall(ActionLabel.START_DOSING, "doser", quantity=2.0),
        ("container_at", "v1", "doser_in"),
        ("container_stopper", "v1", "off"),
        ("door_status", "doser", "open"))                                # G9
    add(ActionCall(ActionLabel.OPEN_DOOR, "doser"),
        ("device_active", "doser", True))                                # G10
    add(ActionCall(ActionLabel.SET_ACTION_VALUE, "plate", value=150.0))  # G11
    add(ActionCall(ActionLabel.DOSE_LIQUID, "plate", quantity=2.0),
        ("container_at", "v1", "plate_top"),
        ("container_solid", "v1", 0.0))                                  # C1
    add(ActionCall(ActionLabel.PLACE_OBJECT, "arm", location="spin_slot", **arm),
        ("robot_holding", "arm", "v1"),
        ("container_solid", "v1", 5.0),
        ("container_liquid", "v1", 0.0),
        ("container_stopper", "v1", "on"),
        ("red_dot", "spin", "N"),
        ("door_status", "spin", "open"))                                 # C2
    add(ActionCall(ActionLabel.PLACE_OBJECT, "arm", location="slot", **arm))  # T2-place
    # Clean passes, including the raw-gripper exemption.
    add(ActionCall(ActionLabel.MOVE_ROBOT, "arm", target=(0.6, 0.5, 0.2), **arm))
    add(ActionCall(ActionLabel.OPEN_GRIPPER, "arm", location="slot", **arm))
    add(ActionCall(ActionLabel.GO_HOME, "arm", **arm))
    return cases


class TestScenarioDifferential:
    @pytest.mark.parametrize("flags", [
        {},
        {"account_held_objects": True,
         "enforce_workspace_bounds": True,
         "enforce_capacity": True},
    ])
    def test_every_scenario_agrees(self, flags):
        rulebase = build_default_rulebase(["C1", "C2", "C3", "C4"])
        compiled = rulebase.compile()
        disagreements = []
        for state, call in _scenarios():
            interpreted = _verdict(rulebase, state, call, **flags)
            fast = _verdict(compiled, state, call, **flags)
            if interpreted != fast:
                disagreements.append((call.label.value, interpreted, fast))
        assert not disagreements

    def test_scenarios_cover_every_rule(self):
        """The sweep is only convincing if it actually fires each rule."""
        rulebase = build_default_rulebase(["C1", "C2", "C3", "C4"])
        fired = set()
        for state, call in _scenarios():
            hit = _verdict(
                rulebase, state, call,
                account_held_objects=True, enforce_capacity=True,
            )
            if hit:
                fired.add(hit[0])
        expected = {"G1", "G2", "G3", "G4", "G5", "G6", "G7", "G8",
                    "G9", "G10", "G11", "C1", "C2", "T2-place"}
        assert expected <= fired


def _strip_dispatch(events):
    """Events with ``verdict.dispatch`` removed — the only field the
    two recordings are allowed to differ in."""
    stripped = []
    for event in events:
        event = dict(event)
        verdict = dict(event["verdict"])
        assert verdict.pop("dispatch") in ("compiled", "interpreted")
        event["verdict"] = verdict
        stripped.append(event)
    return stripped


def _record(workload, dispatch, params=None):
    from repro.trace.workloads import record_workload

    params = dict(params or {})
    params["dispatch"] = dispatch
    return record_workload(workload, params)


WORKLOADS = [
    ("solubility", None),
    ("testbed", None),
    ("centrifuge", None),
    ("multi_door", None),
    ("bug", {"bug_id": "H1", "config": "modified"}),
]


class TestWorkloadDifferential:
    @pytest.mark.parametrize("workload,params", WORKLOADS,
                             ids=[w for w, _ in WORKLOADS])
    def test_traces_identical_up_to_dispatch_label(self, workload, params):
        compiled = _record(workload, "compiled", params)
        interpreted = _record(workload, "interpreted", params)
        assert _strip_dispatch(compiled.events) == _strip_dispatch(interpreted.events)
        assert compiled.footer["outcome"] == interpreted.footer["outcome"]
        assert compiled.footer["final_time"] == interpreted.footer["final_time"]
        for event in compiled.events:
            if event["verdict"]["cache"] != "hit":
                assert event["verdict"]["dispatch"] == "compiled"

    def test_unknown_dispatch_mode_rejected(self):
        with pytest.raises(KeyError, match="unknown dispatch mode"):
            _record("multi_door", "jit")


class TestMutantCorpusDifferential:
    @pytest.mark.parametrize("index", range(SAMPLES))
    def test_mutant_agrees_across_paths(self, index):
        from repro.core.monitor import RabitOptions
        from repro.faults.montecarlo import run_mutant_monitored

        outcomes = {}
        for mode in (True, False):
            options = RabitOptions.modified(compiled_dispatch=mode)
            description, result = run_mutant_monitored(2024, index, options=options)
            outcomes[mode] = (
                description,
                result.completed,
                tuple(result.executed_lines),
                str(result.alert) if result.alert else None,
                result.device_error,
                result.stopped_by_rabit,
            )
        assert outcomes[True] == outcomes[False]
