"""Unit tests for the kinematics substrate: DH chains, IK, trajectories,
and the per-vendor arm facade."""

import math

import numpy as np
import pytest

from repro.geometry.transforms import translation
from repro.kinematics.arm import ArmKinematics, UnreachableTargetError
from repro.kinematics.dh import DHChain, DHLink
from repro.kinematics.ik import solve_position_ik
from repro.kinematics.profiles import NED2, UR3E, UR5E, VIPERX_300, profile_by_name
from repro.kinematics.trajectory import plan_joint_trajectory

ALL_PROFILES = (UR3E, UR5E, VIPERX_300, NED2)


class TestDHChain:
    def test_single_link_planar(self):
        chain = DHChain([DHLink(a=1.0, alpha=0.0, d=0.0)])
        assert np.allclose(chain.end_effector_position([0.0]), [1, 0, 0], atol=1e-12)
        p = chain.end_effector_position([math.pi / 2])
        assert np.allclose(p, [0, 1, 0], atol=1e-12)

    def test_joint_positions_length(self):
        chain = UR3E.chain()
        points = chain.joint_positions(UR3E.home_q)
        assert len(points) == UR3E.dof + 1

    def test_base_transform_shifts_everything(self):
        chain = UR3E.chain().with_base(translation([1.0, 2.0, 0.0]))
        p0 = UR3E.chain().end_effector_position(UR3E.home_q)
        p1 = chain.end_effector_position(UR3E.home_q)
        assert np.allclose(p1 - p0, [1.0, 2.0, 0.0], atol=1e-12)

    def test_wrong_arity_raises(self):
        with pytest.raises(ValueError, match="joint angles"):
            UR3E.chain().forward([0.0, 0.0])

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            DHChain([])


class TestProfiles:
    @pytest.mark.parametrize("profile", ALL_PROFILES, ids=lambda p: p.name)
    def test_home_pose_is_above_deck(self, profile):
        p = profile.chain().end_effector_position(profile.home_q)
        assert p[2] > 0.1, f"{profile.name} home pose must be well above the deck"

    @pytest.mark.parametrize("profile", ALL_PROFILES, ids=lambda p: p.name)
    def test_sleep_pose_is_above_deck(self, profile):
        p = profile.chain().end_effector_position(profile.sleep_q)
        assert p[2] > 0.05

    @pytest.mark.parametrize("profile", ALL_PROFILES, ids=lambda p: p.name)
    def test_postures_respect_joint_limits(self, profile):
        for posture in (profile.home_q, profile.sleep_q):
            for q, (lo, hi) in zip(posture, profile.joint_limits):
                assert lo - 1e-9 <= q <= hi + 1e-9

    def test_lookup_by_name(self):
        assert profile_by_name("ur3e") is UR3E
        assert profile_by_name("VIPERX") is VIPERX_300

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown arm profile"):
            profile_by_name("kuka")


class TestIK:
    @pytest.mark.parametrize("profile", ALL_PROFILES, ids=lambda p: p.name)
    def test_reaches_mid_workspace_targets(self, profile):
        arm = ArmKinematics(profile)
        targets = [
            [profile.reach * 0.5, 0.1, 0.2],
            [0.1, profile.reach * 0.55, 0.15],
            [profile.reach * 0.4, -0.1, 0.1],
        ]
        for target in targets:
            plan = arm.plan_move(target)
            assert not plan.skipped
            arm.execute(plan)
            error = np.linalg.norm(arm.current_position() - np.asarray(target))
            assert error < 0.003, f"{profile.name} missed {target} by {error:.4f} m"

    def test_unreachable_does_not_converge(self):
        chain = UR3E.chain()
        result = solve_position_ik(chain, [0, 0, 5.0], q0=UR3E.home_q)
        assert not result.converged
        assert result.error > 1.0

    def test_respects_joint_limits(self):
        chain = UR3E.chain()
        limits = [(-0.5, 0.5)] * 6
        result = solve_position_ik(
            chain, [0.3, 0.1, 0.3], q0=[0.0] * 6, joint_limits=limits
        )
        for q, (lo, hi) in zip(result.q, limits):
            assert lo - 1e-9 <= q <= hi + 1e-9

    def test_rejects_bad_target_shape(self):
        with pytest.raises(ValueError, match="3D point"):
            solve_position_ik(UR3E.chain(), [0.1, 0.2], q0=UR3E.home_q)

    def test_rejects_unknown_jacobian_mode(self):
        with pytest.raises(ValueError, match="jacobian mode"):
            solve_position_ik(
                UR3E.chain(), [0.3, 0.1, 0.3], q0=UR3E.home_q, jacobian="symbolic"
            )

    @pytest.mark.parametrize("converged_target", [True, False])
    def test_result_q_holds_builtin_floats(self, converged_target):
        # Regression: np.float64 scalars leaking into IKResult.q made
        # report/JSONL serialization type-unstable.
        target = [0.3, 0.1, 0.3] if converged_target else [0.0, 0.0, 5.0]
        result = solve_position_ik(UR3E.chain(), target, q0=UR3E.home_q)
        assert result.converged is converged_target
        for value in result.q:
            assert type(value) is float

    def test_best_posture_is_feasible_when_limits_active(self):
        # Regression: limits must be applied *before* a posture is recorded
        # as best.  Seed the solve outside the limits, with the target at
        # the seed's own FK position: the old code saw zero error at the
        # raw seed and returned the infeasible posture as "converged"; the
        # fixed code clamps first, so every returned posture is feasible.
        chain = UR3E.chain()
        limits = [(-0.3, 0.3)] * 6
        seed = [1.5, -2.0, 1.8, -1.5, 2.0, 1.5]  # violates every limit
        target = chain.end_effector_position(seed)
        result = solve_position_ik(chain, target, q0=seed, joint_limits=limits)
        for q, (lo, hi) in zip(result.q, limits):
            assert lo - 1e-12 <= q <= hi + 1e-12
        if result.converged:
            # Feasible *and* on target is acceptable; infeasible is not.
            reached = chain.end_effector_position(result.q)
            assert np.linalg.norm(reached - target) < 1e-3


class TestTrajectory:
    def test_sample_endpoints(self):
        chain = UR3E.chain()
        traj = plan_joint_trajectory(chain, UR3E.home_q, UR3E.sleep_q)
        samples = traj.sample(10)
        assert len(samples) == 11
        assert np.allclose(samples[0], UR3E.home_q)
        assert np.allclose(samples[-1], UR3E.sleep_q)

    def test_duration_scales_with_excursion(self):
        chain = UR3E.chain()
        short = plan_joint_trajectory(chain, [0] * 6, [0.1] + [0] * 5, speed=1.0)
        long = plan_joint_trajectory(chain, [0] * 6, [1.0] + [0] * 5, speed=1.0)
        assert long.duration > short.duration
        assert long.duration == pytest.approx(1.0)

    def test_zero_motion_has_settling_time(self):
        chain = UR3E.chain()
        stay = plan_joint_trajectory(chain, [0] * 6, [0] * 6)
        assert stay.duration > 0

    def test_end_effector_path_length(self):
        chain = UR3E.chain()
        traj = plan_joint_trajectory(chain, UR3E.home_q, UR3E.sleep_q)
        assert len(traj.end_effector_path(20)) == 21

    def test_negative_speed_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            plan_joint_trajectory(UR3E.chain(), [0] * 6, [1] * 6, speed=0.0)


class TestArmFacade:
    def test_viperx_silently_skips_unreachable(self):
        arm = ArmKinematics(VIPERX_300)
        before = arm.current_position().copy()
        plan = arm.plan_move([0, 0, 5.0])
        assert plan.skipped and not plan.target_reached
        arm.execute(plan)
        assert np.allclose(arm.current_position(), before)

    def test_ned2_raises_on_unreachable(self):
        arm = ArmKinematics(NED2)
        with pytest.raises(UnreachableTargetError, match="cannot compute a trajectory"):
            arm.plan_move([0, 0, 5.0])

    def test_ur3e_raises_on_unreachable(self):
        arm = ArmKinematics(UR3E)
        with pytest.raises(UnreachableTargetError):
            arm.plan_move([2.0, 0, 0.2])

    def test_footprint_contains_arm(self):
        arm = ArmKinematics(UR3E)
        box = arm.footprint_cuboid()
        for point in arm.arm_polyline():
            assert box.contains(point)

    def test_plan_home_and_sleep(self):
        arm = ArmKinematics(VIPERX_300)
        arm.execute(arm.plan_move([0.4, 0.1, 0.2]))
        arm.execute(arm.plan_sleep())
        assert np.allclose(arm.q, VIPERX_300.sleep_q)
        arm.execute(arm.plan_home())
        assert np.allclose(arm.q, VIPERX_300.home_q)

    def test_set_posture_validates_arity(self):
        arm = ArmKinematics(UR3E)
        with pytest.raises(ValueError):
            arm.set_posture([0.0, 0.0])


class TestPrismaticJointsAndN9:
    """The SCARA-style N9 (the Berlinguette precursor-station arm) adds a
    prismatic z-lift to the kinematics substrate."""

    def test_prismatic_variable_extends_d(self):
        from repro.kinematics.dh import DHChain, DHLink

        lift = DHChain([DHLink(a=0.0, alpha=0.0, d=0.1, prismatic=True)])
        p0 = lift.end_effector_position([0.0])
        p1 = lift.end_effector_position([0.15])
        assert p1[2] - p0[2] == pytest.approx(0.15)

    def test_n9_lift_lowers_the_tool(self):
        from repro.kinematics.profiles import N9

        chain = N9.chain()
        retracted = chain.end_effector_position([0, 0, 0.0, 0])
        extended = chain.end_effector_position([0, 0, 0.2, 0])
        assert extended[2] == pytest.approx(retracted[2] - 0.2)
        # Planar position unaffected by the lift.
        assert np.allclose(extended[:2], retracted[:2])

    def test_n9_ik_reaches_scara_workspace(self):
        from repro.kinematics.profiles import N9

        arm = ArmKinematics(N9)
        for target in ([0.25, 0.1, 0.15], [0.2, -0.15, 0.1], [0.3, 0.0, 0.2]):
            plan = arm.plan_move(target)
            assert not plan.skipped
            arm.execute(plan)
            assert np.linalg.norm(arm.current_position() - np.asarray(target)) < 0.005

    def test_n9_cannot_leave_its_vertical_band(self):
        # A SCARA's vertical workspace is exactly its lift range; a
        # target below it must raise (N9 halts like Ned2).
        from repro.kinematics.profiles import N9

        arm = ArmKinematics(N9)
        with pytest.raises(UnreachableTargetError):
            arm.plan_move([0.25, 0.0, -0.2])

    def test_n9_registered_in_profile_lookup(self):
        from repro.kinematics.profiles import N9, profile_by_name

        assert profile_by_name("n9") is N9
        assert N9.dof == 4
