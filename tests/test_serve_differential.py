"""Serve-vs-in-process differential and the degraded-verdict contract.

Two halves of the same promise:

1. **Byte identity** — a single-session command script guarded through
   the service (async guard, cross-session sweep batcher) must produce a
   verdict journal *byte-identical* (canonical JSON) to the classic
   in-process :meth:`Rabit.guard` loop, including rule-verdict-cache
   dispositions.  The batcher is allowed to exist only because it is
   invisible to verdicts.

2. **Degradation is loud** — over the high watermark the service answers
   with a tool-point-only probe that is *strictly weaker* (it can miss a
   gripper-tip strike a full sweep would block).  That divergence is
   permitted exactly once condition: every degraded verdict carries the
   ``degraded`` flag, end to end (batcher → session journal → wire
   response → service counters), and the service recovers to full sweeps
   as soon as the queue drains.
"""

import asyncio
import os
import tempfile

from repro.core.interceptor import resolve_action
from repro.core.model import ObstacleModel
from repro.geometry.shapes import Cuboid
from repro.serve.batcher import SweepBatcher
from repro.serve.client import ServeClient
from repro.serve.journal import run_inprocess_journal
from repro.serve.server import GuardServer
from repro.serve.session import build_guarded_deck, default_serve_options
from repro.trace.canon import canonical_bytes

#: A script that exercises every journal field: clean motions, door
#: bookkeeping, a G1 alert, and enough repetition for a cache hit.
SCRIPT = [
    {"device": "ur3e", "method": "go_to_home_pose"},
    {"device": "ur3e", "method": "move_to_location", "args": ["grid_a1_safe"]},
    {"device": "dosing_device", "method": "open_door"},
    {"device": "ur3e", "method": "move_to_location", "args": ["dosing_interior"]},
    {"device": "ur3e", "method": "move_to_location", "args": ["grid_a1_safe"]},
    {"device": "dosing_device", "method": "close_door"},
    {"device": "ur3e", "method": "move_to_location", "args": ["dosing_interior"]},
    {"device": "ur3e", "method": "go_to_home_pose"},
    {"device": "ur3e", "method": "go_to_home_pose"},
    {"device": "ur3e", "method": "go_to_home_pose"},
]


async def _service_journal(script):
    server = GuardServer()
    path = os.path.join(tempfile.mkdtemp(prefix="rabit-serve-diff-"), "g.sock")
    await server.start_unix(path)
    try:
        client = await ServeClient.open_unix(path)
        await client.open_session(deck="hein")
        for command in script:
            await client.command(
                command["device"], command["method"], *command.get("args", ())
            )
        journal = await client.journal()
        sweep_stats = dict(server.batcher.stats)
        await client.close()
        return journal, sweep_stats
    finally:
        await server.stop()


def test_service_journal_is_byte_identical_to_inprocess():
    service, sweeps = asyncio.run(_service_journal(SCRIPT))
    inprocess = run_inprocess_journal("hein", SCRIPT)

    assert canonical_bytes(service) == canonical_bytes(inprocess)

    # The equality above is only meaningful if the script exercised what
    # it claims to: batched sweeps, an alert, and a cache hit.
    assert sweeps["submitted"] >= 4, sweeps
    assert sweeps["degraded"] == 0, sweeps
    alerts = [e["alert"] for e in service if e["alert"] is not None]
    assert [a["rule_id"] for a in alerts] == ["G1"]
    assert any(e["rule_cache"] == "hit" for e in service)
    assert all(e["degraded"] is False for e in service)


# -- degradation -------------------------------------------------------------


def _tip_trap_job():
    """A sweep job whose gripper tip strikes a slab the wrist clears.

    ``surface=True`` obstacles are probed against gripper/held tips only
    — exactly the family the degraded tool-point-only probe skips — so
    this is the canonical full-blocks/degraded-clears divergence.
    """
    deck, rabit = build_guarded_deck("hein", {}, None, default_serve_options())
    device = deck.devices["ur3e"]
    call = resolve_action(device, "move_to_location", ("grid_a1_safe",), {})
    checker = rabit.trajectory_checker
    job = checker.prepare_sweep(call, rabit.state, rabit.model, True)
    assert job is not None

    mid = job.samples[len(job.samples) // 2]
    tip_z = mid[2] - job.robot_model.gripper_clearance
    rabit.model.add_obstacle(
        ObstacleModel(
            name="wet_tray",
            frames={
                job.frame: Cuboid(
                    (mid[0] - 0.05, mid[1] - 0.05, tip_z - 0.004),
                    (mid[0] + 0.05, mid[1] + 0.05, tip_z + 0.004),
                    name="wet_tray",
                )
            },
            surface=True,
        )
    )
    # Re-prepare against the mutated geometry so the job and the engines
    # the batcher builds for it agree.
    job = checker.prepare_sweep(call, rabit.state, rabit.model, True)
    return job


def test_degraded_probe_misses_tip_strike_but_is_flagged():
    async def scenario():
        job = _tip_trap_job()
        geom_key = ("tip-trap", job.frame, job.exclude)

        # Full path: the batched sweep blocks on the tip strike.
        batcher = SweepBatcher()
        batcher.start()
        problem, degraded = await batcher.submit(job, geom_key)
        assert problem is not None and "wet_tray" in problem
        assert degraded is False
        await batcher.stop()

        # Degraded path: a queue already at the watermark forces the
        # inline tool-point-only probe, which *clears* the same motion —
        # tolerable only because the flag says so.
        loaded = SweepBatcher(maxsize=4, high_watermark=1)
        loaded._queue.put_nowait(
            (job, geom_key, asyncio.get_running_loop().create_future())
        )
        problem, degraded = await loaded.submit(job, geom_key)
        assert problem is None, "degraded probe skips tip strikes by design"
        assert degraded is True, "a weaker verdict must never pass as a full one"
        assert loaded.stats["degraded"] == 1
        await loaded.stop()

    asyncio.run(scenario())


def test_service_degrades_under_load_and_recovers():
    async def scenario():
        # A watermark of 1 makes any queue overlap degrade: with several
        # sessions pounding move commands, some sweeps answer inline.
        server = GuardServer(queue_size=8, high_watermark=1, max_batch=8)
        path = os.path.join(tempfile.mkdtemp(prefix="rabit-serve-deg-"), "g.sock")
        await server.start_unix(path)
        try:
            clients = []
            for _ in range(6):
                client = await ServeClient.open_unix(path)
                await client.open_session(deck="hein_lean")
                clients.append(client)

            async def hammer(client):
                responses = []
                for _ in range(6):
                    responses.append(
                        await client.command("ur3e", "move_to_location", "grid_a1_safe")
                    )
                    responses.append(await client.command("ur3e", "go_to_home_pose"))
                return responses

            all_responses = await asyncio.gather(*[hammer(c) for c in clients])

            # Degradation happened, and every degraded verdict was
            # flagged consistently on the wire, in the journal, and in
            # the service counters — never silently.
            assert server.batcher.stats["degraded"] > 0
            wire_degraded = sum(
                1 for rs in all_responses for r in rs if r["degraded"]
            )
            journal_degraded = 0
            for client in clients:
                journal_degraded += sum(
                    1 for e in await client.journal() if e["degraded"]
                )
            assert wire_degraded == server.batcher.stats["degraded"]
            assert journal_degraded == wire_degraded
            assert server.stats["degraded_commands"] == wire_degraded

            # Recovery: with the load gone the queue is empty again, so a
            # fresh command gets a full (non-degraded) sweep.
            calm = await clients[0].command(
                "ur3e", "move_to_location", "grid_a1_safe"
            )
            assert calm["ok"] and calm["degraded"] is False

            for client in clients:
                await client.close()
        finally:
            await server.stop()

    asyncio.run(scenario())


# -- sharded service ----------------------------------------------------------
#
# The strongest claim the shard layer makes: the router pipes session
# frames untouched into what is, per worker, exactly the single-process
# service — so a session's journal is byte-identical to the in-process
# reference REGARDLESS of worker count, routing key, or which shard the
# session landed on.


def _sharded_journals(script, workers, keys):
    from repro.serve.shard import ShardConfig, ShardService

    async def scenario():
        service = ShardService(ShardConfig(workers=workers))
        await service.start()
        try:
            journals = {}
            for key in keys:
                client = await ServeClient.open_tcp(
                    service.config.host, service.config.port
                )
                await client.open_session(deck="hein", key=key)
                for command in script:
                    await client.command(
                        command["device"],
                        command["method"],
                        *command.get("args", ()),
                    )
                journals[key] = await client.journal()
                await client.close()
            stats_client = await ServeClient.open_tcp(
                service.config.host, service.config.port
            )
            merged = (await stats_client.request({"op": "stats"}))["stats"]
            await stats_client.close()
            return journals, merged
        finally:
            await service.stop()

    return asyncio.run(scenario())


def _keys_covering_both_workers():
    """Session keys chosen (deterministically) to hit both of 2 shards."""
    from repro.serve.shard import shard_for

    keys, hit = [], set()
    i = 0
    while hit != {0, 1}:
        key = f"diff-sess-{i}"
        index = shard_for("default", key, 2)
        if index not in hit:
            hit.add(index)
            keys.append(key)
        i += 1
    return keys


def test_sharded_journals_byte_identical_across_worker_counts():
    reference = canonical_bytes(run_inprocess_journal("hein", SCRIPT))
    keys = _keys_covering_both_workers()

    for workers in (1, 2):
        journals, merged = _sharded_journals(SCRIPT, workers, keys)
        for key, journal in journals.items():
            assert canonical_bytes(journal) == reference, (workers, key)

        # The deterministic merge accounted for every command exactly
        # once, however the sessions were spread.
        assert merged["workers"] == workers
        assert merged["workers_alive"] == workers
        assert merged["totals"]["commands"] == len(SCRIPT) * len(keys)
        assert merged["totals"]["sessions_opened"] == len(keys)
        per_worker_commands = [
            p["commands"] for p in merged["per_worker"] if p is not None
        ]
        assert sum(per_worker_commands) == len(SCRIPT) * len(keys)
        if workers == 2:
            # The chosen keys really did exercise both shards.
            assert all(count > 0 for count in per_worker_commands)
