"""Tests for the Monte Carlo bug-injection harness."""

import pytest

from repro.faults.montecarlo import MonteCarloReport, MutantOutcome, run_monte_carlo


@pytest.fixture(scope="module")
def report() -> MonteCarloReport:
    # Small but deterministic sample; the benchmark runs a bigger sweep.
    return run_monte_carlo(samples=10, seed=2024)


class TestSweep:
    def test_every_mutant_scored(self, report):
        assert len(report.outcomes) == 10
        assert all(
            o.classification
            in {"true_positive", "false_negative", "true_negative", "false_positive"}
            for o in report.outcomes
        )

    def test_no_false_alarms_on_benign_mutants(self, report):
        # The paper's zero-false-positive claim, now over random mutants:
        # a mutation that harms nothing must not trip the monitor.
        assert report.false_alarm_rate == 0.0
        assert report.count("false_positive") == 0

    def test_some_mutants_are_harmful_and_detected(self, report):
        assert report.harmful_total >= 2
        assert report.count("true_positive") >= 1

    def test_detection_rate_in_paper_band(self, report):
        # The 16-bug campaign measured 50-81 % depending on revision; the
        # random-mutant estimate under modified RABIT should land in a
        # compatible (wide) band rather than at an extreme.
        assert 0.4 <= report.detection_rate <= 1.0

    def test_deterministic_under_seed(self):
        a = run_monte_carlo(samples=4, seed=7)
        b = run_monte_carlo(samples=4, seed=7)
        assert [o.description for o in a.outcomes] == [
            o.description for o in b.outcomes
        ]
        assert [o.classification for o in a.outcomes] == [
            o.classification for o in b.outcomes
        ]

    def test_bug_c_shape_appears_as_false_negative(self, report):
        # Deleting the pick line is Bug C; when sampled it must score as
        # harmful-but-missed (the gripper-sensor gap).
        picks = [o for o in report.outcomes if o.description == "delete pick_grid"]
        for outcome in picks:
            assert outcome.classification == "false_negative"


class TestOutcomeModel:
    def test_classification_matrix(self):
        def make(harmful, detected):
            return MutantOutcome(0, "x", harmful, detected, ())

        assert make(True, True).classification == "true_positive"
        assert make(True, False).classification == "false_negative"
        assert make(False, True).classification == "false_positive"
        assert make(False, False).classification == "true_negative"

    def test_rates_on_empty_report(self):
        report = MonteCarloReport()
        assert report.detection_rate == 0.0
        assert report.false_alarm_rate == 0.0
