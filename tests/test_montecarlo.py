"""Tests for the Monte Carlo bug-injection harness."""

import pytest

from repro.faults.montecarlo import (
    MonteCarloReport,
    MutantOutcome,
    _rng_for_sample,
    _sample_mutation,
    reference_line_ids,
    run_monte_carlo,
)


@pytest.fixture(scope="module")
def report() -> MonteCarloReport:
    # Small but deterministic sample; the benchmark runs a bigger sweep.
    return run_monte_carlo(samples=10, seed=2024)


class TestSweep:
    def test_every_mutant_scored(self, report):
        assert len(report.outcomes) == 10
        assert all(
            o.classification
            in {"true_positive", "false_negative", "true_negative", "false_positive"}
            for o in report.outcomes
        )

    def test_no_false_alarms_on_benign_mutants(self, report):
        # The paper's zero-false-positive claim, now over random mutants:
        # a mutation that harms nothing must not trip the monitor.
        assert report.false_alarm_rate == 0.0
        assert report.count("false_positive") == 0

    def test_some_mutants_are_harmful_and_detected(self, report):
        assert report.harmful_total >= 2
        assert report.count("true_positive") >= 1

    def test_detection_rate_in_paper_band(self, report):
        # The 16-bug campaign measured 50-81 % depending on revision; the
        # random-mutant estimate under modified RABIT should land in a
        # compatible (wide) band rather than at an extreme.
        assert 0.4 <= report.detection_rate <= 1.0

    def test_deterministic_under_seed(self):
        a = run_monte_carlo(samples=4, seed=7)
        b = run_monte_carlo(samples=4, seed=7)
        assert [o.description for o in a.outcomes] == [
            o.description for o in b.outcomes
        ]
        assert [o.classification for o in a.outcomes] == [
            o.classification for o in b.outcomes
        ]

    def test_bug_c_shape_appears_as_false_negative(self, report):
        # Deleting the pick line is Bug C; when sampled it must score as
        # harmful-but-missed (the gripper-sensor gap).
        picks = [o for o in report.outcomes if o.description == "delete pick_grid"]
        for outcome in picks:
            assert outcome.classification == "false_negative"


class TestSeedStability:
    """The determinism contract: mutant *i* of seed *s* depends on
    ``(s, i)`` alone — never on the sample count or execution order."""

    #: Pinned outcomes of ``run_monte_carlo(samples=10, seed=2024)``.
    #: These may only change with a deliberate (documented) change to the
    #: mutation operators or RNG derivation — growing the sweep, sharding
    #: it, or reordering execution must never touch them.
    PINNED_SEED_2024 = [
        ("perturb dosing_pickup_viperx.x by +0.04", "true_negative"),
        ("delete home_1", "true_negative"),
        ("perturb grid_ne_ned2_safe.z by -0.08", "true_negative"),
        ("swap decap_vial <-> home_1", "true_negative"),
        ("perturb grid_ne_ned2.x by +0.08", "true_negative"),
        ("perturb grid_nw_viperx.y by +0.08", "true_negative"),
        ("delete sleep_viperx", "true_negative"),
        ("swap place_dosing <-> home_2", "true_negative"),
        ("delete open_door_initial", "true_positive"),
        ("delete open_door_initial", "true_positive"),
    ]

    def test_pinned_outcomes_for_fixed_seed(self, report):
        assert [
            (o.description, o.classification) for o in report.outcomes
        ] == self.PINNED_SEED_2024

    def test_outcome_index_recorded(self, report):
        assert [o.seed for o in report.outcomes] == list(range(10))

    def test_sampling_independent_of_sample_count(self):
        # Descriptions only (sampling is cheap; running mutants is not):
        # the first k mutants of a longer sweep are exactly the k-sample
        # sweep, because each index owns its own derived RNG.
        line_ids = reference_line_ids()

        def descriptions(seed, count):
            return [
                _sample_mutation(_rng_for_sample(seed, i), line_ids)[0]
                for i in range(count)
            ]

        for seed in (7, 30, 2024):
            assert descriptions(seed, 12)[:5] == descriptions(seed, 5)

    def test_distinct_seeds_sample_distinct_streams(self):
        line_ids = reference_line_ids()
        a = [_sample_mutation(_rng_for_sample(7, i), line_ids)[0] for i in range(8)]
        b = [_sample_mutation(_rng_for_sample(8, i), line_ids)[0] for i in range(8)]
        assert a != b


class TestOutcomeModel:
    def test_classification_matrix(self):
        def make(harmful, detected):
            return MutantOutcome(0, "x", harmful, detected, ())

        assert make(True, True).classification == "true_positive"
        assert make(True, False).classification == "false_negative"
        assert make(False, True).classification == "false_positive"
        assert make(False, False).classification == "true_negative"

    def test_rates_on_empty_report(self):
        report = MonteCarloReport()
        assert report.detection_rate == 0.0
        assert report.false_alarm_rate == 0.0
