"""Tests for the URSim substrate and the Extended Simulator."""

import numpy as np
import pytest

from repro.core.actions import ActionCall, ActionLabel
from repro.core.errors import AlertKind, SafetyViolation
from repro.core.state import LabState
from repro.lab.hein import build_hein_deck, make_hein_rabit
from repro.kinematics.profiles import UR3E, VIPERX_300
from repro.simulator.extended import ExtendedSimulator
from repro.simulator.gui import GuiLatencyModel
from repro.simulator.ursim import URSimArm
from repro.core.clock import VirtualClock
from repro.testbed.deck import build_testbed_deck, make_testbed_rabit


class TestURSim:
    def test_plans_reachable_targets(self):
        sim = URSimArm(UR3E)
        plan = sim.try_plan([0.25, 0.1, 0.2])
        assert plan is not None and not plan.skipped

    def test_reports_unreachable_as_none_even_for_viperx(self):
        # URSim is a simulator: it reports infeasibility instead of
        # silently skipping, regardless of the vendor controller.
        sim = URSimArm(VIPERX_300)
        assert sim.try_plan([0, 0, 5.0]) is None

    def test_simulate_returns_polled_polylines(self):
        sim = URSimArm(UR3E)
        plan = sim.try_plan([0.25, 0.1, 0.2])
        frames = sim.simulate(plan, resolution=10)
        assert len(frames) == 11
        assert len(frames[0]) == UR3E.dof + 1

    def test_posture_sync(self):
        sim = URSimArm(UR3E)
        sim.set_posture(UR3E.sleep_q)
        assert np.allclose(sim.kinematics.q, UR3E.sleep_q)


class TestExtendedSimulatorChecks:
    def _checker_and_model(self):
        deck = build_hein_deck()
        rabit, proxies, _ = make_hein_rabit(deck)
        checker = ExtendedSimulator({"ur3e": deck.ur3e})
        return deck, rabit, checker

    def test_clear_trajectory_passes(self):
        deck, rabit, checker = self._checker_and_model()
        call = ActionCall(
            ActionLabel.MOVE_ROBOT, "ur3e", robot="ur3e", target=(0.3, -0.05, 0.28),
            location="grid_a1_safe",
        )
        assert checker.validate_trajectory(
            call, rabit.state, rabit.model, account_held_objects=True
        ) is None

    def test_path_through_obstacle_detected(self):
        deck, rabit, checker = self._checker_and_model()
        # Start the arm on the far side so the straight path crosses the
        # thermoshaker cuboid at low height.
        deck.ur3e.kinematics.execute(deck.ur3e.kinematics.plan_move([0.35, 0.12, 0.08]))
        call = ActionCall(
            ActionLabel.MOVE_ROBOT, "ur3e", robot="ur3e", target=(0.12, 0.38, 0.08)
        )
        problem = checker.validate_trajectory(
            call, rabit.state, rabit.model, account_held_objects=True
        )
        assert problem is not None and "thermoshaker" in problem

    def test_held_vial_extent_only_when_enabled(self):
        deck, rabit, checker = self._checker_and_model()
        rabit.state.set("robot_holding", "ur3e", "vial_1")
        # Target above the grid top (0.05): bare gripper clears at
        # z = 0.09, but a held vial reaches 3 cm lower.
        call = ActionCall(
            ActionLabel.MOVE_ROBOT, "ur3e", robot="ur3e", target=(0.30, -0.05, 0.09)
        )
        with_held = checker.validate_trajectory(
            call, rabit.state, rabit.model, account_held_objects=True
        )
        without = checker.validate_trajectory(
            call, rabit.state, rabit.model, account_held_objects=False
        )
        assert with_held is not None and "vial_1" in with_held
        assert without is None

    def test_entered_device_excluded_when_door_open(self):
        deck, rabit, checker = self._checker_and_model()
        rabit.state.set("door_status", "dosing_device", "open")
        call = ActionCall(
            ActionLabel.MOVE_ROBOT_INSIDE, "ur3e", robot="ur3e",
            location="dosing_interior", target=(0.0, 0.38, 0.12),
        )
        assert checker.validate_trajectory(
            call, rabit.state, rabit.model, account_held_objects=True
        ) is None

    def test_unplannable_move_yields_no_trajectory(self):
        deck, rabit, checker = self._checker_and_model()
        call = ActionCall(
            ActionLabel.MOVE_ROBOT, "ur3e", robot="ur3e", target=(3.0, 0.0, 0.2)
        )
        assert checker.validate_trajectory(
            call, rabit.state, rabit.model, account_held_objects=True
        ) is None

    def test_unknown_robot_ignored(self):
        deck, rabit, checker = self._checker_and_model()
        call = ActionCall(ActionLabel.MOVE_ROBOT, "ghost", robot="ghost")
        assert checker.validate_trajectory(
            call, LabState(), rabit.model, account_held_objects=True
        ) is None


class TestArmLinkSweep:
    """The batched full-arm link sweep (``sweep_links=True``): joint-space
    polylines from the vectorized FK kernel, swept segment-by-segment
    against the link-radius-inflated obstacle engine."""

    def _setup(self, sweep_links):
        deck = build_hein_deck()
        rabit, _, _ = make_hein_rabit(deck)
        checker = ExtendedSimulator({"ur3e": deck.ur3e}, sweep_links=sweep_links)
        return deck, rabit, checker

    def test_off_by_default_and_clear_move_stays_clear(self):
        deck, rabit, checker = self._setup(sweep_links=True)
        assert ExtendedSimulator({"ur3e": deck.ur3e}).sweep_links is False
        call = ActionCall(
            ActionLabel.MOVE_ROBOT, "ur3e", robot="ur3e", target=(0.3, -0.05, 0.28),
            location="grid_a1_safe",
        )
        assert checker.validate_trajectory(
            call, rabit.state, rabit.model, account_held_objects=True
        ) is None

    def test_catches_elbow_strike_the_tool_sweep_misses(self):
        from repro.core.config import build_model
        from repro.lab.hein import build_hein_deck as rebuild

        deck, rabit, checker = self._setup(sweep_links=True)
        robot = deck.ur3e
        target = (0.3, -0.05, 0.28)
        # Re-plan the exact motion the simulator will poll and pick a
        # mid-motion *elbow* position well away from the straight
        # end-effector line the tool-point sweep probes.
        plan = robot.kinematics.plan_move(target)
        paths = plan.trajectory.link_paths_array(ExtendedSimulator.RESOLUTION)
        ee_start = np.asarray(robot.kinematics.current_position())
        ee_end = paths[-1, -1]
        steps = np.linspace(0.0, 1.0, ExtendedSimulator.RESOLUTION + 1)
        ee_line = ee_start[None, :] + (ee_end - ee_start)[None, :] * steps[:, None]
        best = None
        for s in range(paths.shape[0]):
            for j in range(2, paths.shape[1] - 1):  # elbow/wrist origins
                p = paths[s, j]
                clearance = np.min(np.linalg.norm(ee_line - p[None, :], axis=1))
                if best is None or clearance > best[0]:
                    best = (clearance, p)
        clearance, elbow = best
        assert clearance > 0.08, "scene unsuitable: elbow hugs the tool line"

        config = rebuild().config
        config["obstacles"].append({
            "name": "overhead_duct",
            "surface": False,
            "frames": {"ur3e": {
                "min": [float(x) - 0.02 for x in elbow],
                "max": [float(x) + 0.02 for x in elbow],
            }},
        })
        model = build_model(config)
        call = ActionCall(ActionLabel.MOVE_ROBOT, "ur3e", robot="ur3e", target=target)

        problem = checker.validate_trajectory(
            call, rabit.state, model, account_held_objects=True
        )
        assert problem is not None and "arm link would collide" in problem
        assert "overhead_duct" in problem

        # The paper's tool-point mechanism (links off) misses the same strike.
        tool_only = ExtendedSimulator({"ur3e": deck.ur3e})
        assert tool_only.validate_trajectory(
            call, rabit.state, model, account_held_objects=True
        ) is None

    def test_link_sweep_engine_cache_reuses_revision(self):
        deck, rabit, checker = self._setup(sweep_links=True)
        call = ActionCall(
            ActionLabel.MOVE_ROBOT, "ur3e", robot="ur3e", target=(0.3, -0.05, 0.28),
        )
        for _ in range(2):
            checker.validate_trajectory(
                call, rabit.state, rabit.model, account_held_objects=True
            )
        assert len(checker._link_engine_cache) == 1


class TestSilentSkipScenario:
    def test_es_catches_post_skip_collision(self):
        """Footnote 2 end-to-end: B' silently skipped, A->C sweeps into
        the thermoshaker mockup; only the Extended Simulator notices."""
        deck = build_testbed_deck()
        rabit, proxies, _ = make_testbed_rabit(deck, use_extended_simulator=True)
        viperx = proxies["viperx"]
        viperx.move_to_location("grid_nw_viperx_safe")  # A
        viperx.move_to_location([0.62, -0.38, 0.35])  # B': skipped silently
        with pytest.raises(SafetyViolation) as excinfo:
            viperx.move_to_location([0.37, -0.46, 0.10])  # C
        assert excinfo.value.alert.kind is AlertKind.INVALID_TRAJECTORY

    def test_without_es_the_same_sequence_is_missed(self):
        deck = build_testbed_deck()
        rabit, proxies, _ = make_testbed_rabit(deck, use_extended_simulator=False)
        viperx = proxies["viperx"]
        viperx.move_to_location("grid_nw_viperx_safe")
        viperx.move_to_location([0.62, -0.38, 0.35])
        viperx.move_to_location([0.37, -0.46, 0.10])
        assert rabit.alert_count == 0
        assert any(d.kind == "arm_collision" for d in deck.world.damage_log)


class TestGuiLatency:
    def test_render_vs_headless_cost(self):
        clock = VirtualClock()
        gui = GuiLatencyModel(render_latency=2.0, headless_latency=0.01)
        assert gui.charge(clock) == 2.0
        gui.bypass_gui = True
        assert gui.charge(clock) == 0.01
        assert clock.spent("rabit_simulator_gui") == pytest.approx(2.01)


class TestTopdownRenderer:
    """The terminal stand-in for the Fig. 3 deck view."""

    @pytest.fixture(scope="class")
    def rendering(self):
        from repro.lab.hein import build_hein_deck, make_hein_rabit
        from repro.simulator.render import render_topdown

        deck = build_hein_deck()
        make_hein_rabit(deck)
        return render_topdown(deck.model, "ur3e", robot=deck.ur3e)

    def test_every_device_appears_in_legend(self, rendering):
        for name in ("dosing_device", "centrifuge", "hotplate", "grid",
                     "thermoshaker", "syringe_pump", "platform"):
            assert name in rendering

    def test_arm_marker_present(self, rendering):
        assert "@" in rendering and "ur3e gripper" in rendering

    def test_locations_marked(self, rendering):
        assert "*" in rendering and "named location" in rendering

    def test_refined_shapes_render_round(self):
        # A hemispherical centrifuge occupies fewer cells than its
        # bounding cuboid — the renderer probes contains(), not boxes.
        from repro.core.config import build_model
        from repro.lab.hein import build_hein_deck
        from repro.simulator.render import render_topdown

        config = build_hein_deck().config
        for obs in config["obstacles"]:
            if obs["name"] == "centrifuge":
                obs["frames"]["ur3e"] = {
                    "type": "cylinder",
                    "center_xy": [0.0, -0.38],
                    "z_range": [0.0, 0.25],
                    "radius": 0.10,
                }
        refined = render_topdown(build_model(config), "ur3e")
        cuboid = render_topdown(build_model(build_hein_deck().config), "ur3e")
        assert refined.count("C") < cuboid.count("C")

    def test_empty_frame_renders(self):
        from repro.core.model import RabitLabModel
        from repro.simulator.render import render_topdown

        text = render_topdown(RabitLabModel("empty"), "nowhere")
        assert "top-down" in text
