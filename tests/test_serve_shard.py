"""The sharded guard service: routing, merging, lifecycle, scrape.

Unit halves pin the two pure layers — deterministic ``(tenant, key) →
worker`` routing (process-independent by construction, unlike builtin
``hash``) and worker-index-order stat/metric merging.  Integration
halves fork real worker processes and exercise the operational story:
crash detection and watchdog respawn, retryable refusals while a shard
slot is empty, graceful drain-and-respawn, mid-session connection loss
surfacing as the retry-eligible client error, and the ``/metrics`` +
``/healthz`` HTTP face.
"""

import asyncio
import os
import signal

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.client import ServeClient, ServeConnectionLost, ServeUnavailableError
from repro.serve.shard import (
    ShardConfig,
    ShardService,
    merge_numeric,
    merge_obs_snapshots,
    merged_view,
    shard_for,
    stats_to_gauges,
    worker_socket_path,
)


def run(coro):
    return asyncio.run(coro)


# -- routing ------------------------------------------------------------------


def test_shard_for_is_deterministic_and_in_range():
    for workers in (1, 2, 3, 7):
        for key in ("a", "b", "session-42", ""):
            index = shard_for("default", key, workers)
            assert 0 <= index < workers
            assert index == shard_for("default", key, workers)
    assert shard_for("default", "anything", 1) == 0


def test_shard_for_separates_tenants_and_keys():
    # Not a uniformity proof — just evidence the hash actually reads
    # both fields (a constant function would satisfy determinism too).
    spread = {shard_for("default", f"key-{i}", 4) for i in range(32)}
    assert spread == {0, 1, 2, 3}
    assert any(
        shard_for("acme", f"key-{i}", 4) != shard_for("default", f"key-{i}", 4)
        for i in range(32)
    )


def test_shard_for_rejects_zero_workers():
    with pytest.raises(ValueError):
        shard_for("default", "k", 0)


def test_worker_socket_path_layout():
    assert worker_socket_path("/tmp/g.sock", 0) == "/tmp/g.sock.w0"
    assert worker_socket_path("/tmp/g.sock", 3) == "/tmp/g.sock.w3"
    with pytest.raises(ValueError):
        worker_socket_path("/tmp/g.sock", -1)


# -- stat merging -------------------------------------------------------------


def test_merge_numeric_sums_recursively_and_maxes_highwater():
    merged = merge_numeric(
        [
            {"commands": 3, "sweeps": {"batched": 2, "max_batch": 4}, "ok": True},
            {"commands": 5, "sweeps": {"batched": 1, "max_batch": 2}, "ok": True},
        ]
    )
    assert merged["commands"] == 8
    assert merged["sweeps"]["batched"] == 3
    assert merged["sweeps"]["max_batch"] == 4, "high-water marks merge by max"
    assert merged["ok"] is True, "bools are not counters"


def test_merged_view_preserves_dead_worker_slots():
    view = merged_view([{"commands": 2}, None, {"commands": 5}])
    assert view["workers"] == 3
    assert view["workers_alive"] == 2
    assert view["per_worker"][1] is None
    assert view["totals"]["commands"] == 7


def test_merge_is_order_independent_on_totals():
    a = {"commands": 3, "sweeps": {"max_batch": 4}}
    b = {"commands": 5, "sweeps": {"max_batch": 2}}
    assert merge_numeric([a, b]) == merge_numeric([b, a])


def test_merge_obs_snapshots_sums_series_and_histograms():
    def make(commands, observations):
        registry = MetricsRegistry()
        counter = registry.counter("cmds_total", "c", labels=("outcome",))
        counter.inc(commands, outcome="allowed")
        registry.gauge("open_now", "g").set(float(commands))
        histogram = registry.histogram("batch_size", "h", buckets=(1, 4))
        for value in observations:
            histogram.observe(value)
        return registry.snapshot()

    merged = merge_obs_snapshots([make(3, [1, 2]), make(4, [8])])
    snap = merged.snapshot()
    series = snap["counters"]["cmds_total"]["values"]
    assert series == [{"labels": {"outcome": "allowed"}, "value": 7.0}]
    assert snap["gauges"]["open_now"]["values"][0]["value"] == 7.0
    hist = snap["histograms"]["batch_size"]["values"][0]
    assert hist["count"] == 3
    assert hist["sum"] == 11.0
    # Snapshot counts are per-bucket (the exporter cumulates at render):
    # values 1 and 2 land in le=1 and le=4, value 8 in +Inf.
    assert hist["counts"] == [1.0, 1.0, 1.0]

    # Rendering goes through the stock exporter, so the merged view is
    # scrape-ready without a second formatter.
    text = merged.to_prometheus()
    assert 'cmds_total{outcome="allowed"} 7' in text
    assert "batch_size_bucket" in text


def test_merge_obs_snapshots_rejects_bucket_mismatch():
    r1, r2 = MetricsRegistry(), MetricsRegistry()
    r1.histogram("lat", buckets=(1, 2)).observe(1.0)
    r2.histogram("lat", buckets=(1, 2, 4)).observe(1.0)
    with pytest.raises(ValueError, match="bucket mismatch"):
        merge_obs_snapshots([r1.snapshot(), r2.snapshot()])


def test_stats_to_gauges_flattens_nested_numerics():
    registry = MetricsRegistry()
    stats_to_gauges(
        registry,
        {"commands": 8, "sweeps": {"batched": 3}, "degraded": False, "deck": "hein"},
    )
    assert registry.gauge("shard_commands").value() == 8.0
    assert registry.gauge("shard_sweeps_batched").value() == 3.0
    assert registry.get("shard_degraded") is None, "bools are skipped"
    assert registry.get("shard_deck") is None, "strings are skipped"


# -- integration: real forked workers ----------------------------------------


async def _http_get(port, path):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.0\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    return int(head.split()[1]), body.decode()


async def _open_pinned(service, worker, deck="hein_lean"):
    client = await ServeClient.open_tcp(service.config.host, service.config.port)
    await client.open_session(deck=deck, worker=worker)
    return client


def test_sessions_route_by_key_and_spread_by_round_robin():
    async def scenario():
        service = ShardService(ShardConfig(workers=2))
        await service.start()
        try:
            # Keyed sessions land on shard_for's worker; keyless ones
            # round-robin; pins override everything.
            keyed = "pinned-key"
            expected = shard_for("default", keyed, 2)
            client = await ServeClient.open_tcp(
                service.config.host, service.config.port
            )
            await client.open_session(deck="hein_lean", key=keyed)
            await client.close()
            assert service.router.routed_per_worker.get(expected) == 1

            for _ in range(4):
                c = await ServeClient.open_tcp(
                    service.config.host, service.config.port
                )
                await c.open_session(deck="hein_lean")
                await c.close()
            per_worker = [
                service.router.routed_per_worker.get(i, 0) for i in range(2)
            ]
            assert sum(per_worker) == 5
            assert all(count >= 2 for count in per_worker), per_worker
        finally:
            await service.stop()

    run(scenario())


def test_worker_pin_out_of_range_is_refused():
    async def scenario():
        service = ShardService(ShardConfig(workers=2))
        await service.start()
        try:
            client = await ServeClient.open_tcp(
                service.config.host, service.config.port
            )
            with pytest.raises(Exception, match="out of range"):
                await client.open_session(deck="hein_lean", worker=7)
            await client.close()
        finally:
            await service.stop()

    run(scenario())


def test_crash_detection_respawn_and_retryable_refusal():
    async def scenario():
        service = ShardService(ShardConfig(workers=2, watchdog_interval=0.02))
        await service.start()
        try:
            victim = service.workers[0].process.pid
            os.kill(victim, signal.SIGKILL)

            # Until the watchdog has respawned the slot, a pinned open
            # fails only in retry-eligible ways: the router's explicit
            # worker-unavailable refusal, or (in the narrow window where
            # the dying socket still accepted the upstream connect) a
            # connection loss.  Both subclass ConnectionError, so the
            # stock retry policy handles either.
            deadline = asyncio.get_running_loop().time() + 10.0
            while True:
                try:
                    client = await _open_pinned(service, worker=0)
                    break
                except (ServeUnavailableError, ServeConnectionLost) as exc:
                    if isinstance(exc, ServeUnavailableError):
                        assert exc.code == "worker-unavailable"
                    assert isinstance(exc, ConnectionError)
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.02)
            assert service.stats["workers_respawned"] == 1
            assert service.workers[0].process.pid != victim
            response = await client.command("ur3e", "go_to_home_pose")
            assert response["ok"]
            await client.close()
        finally:
            await service.stop()

    run(scenario())


def test_mid_session_crash_surfaces_retry_eligible_loss():
    async def scenario():
        service = ShardService(ShardConfig(workers=2, watchdog_interval=0.02))
        await service.start()
        try:
            client = await _open_pinned(service, worker=1)
            assert (await client.command("ur3e", "go_to_home_pose"))["ok"]
            os.kill(service.workers[1].process.pid, signal.SIGKILL)
            with pytest.raises(ServeConnectionLost) as excinfo:
                for _ in range(20):  # first commands may race the kill
                    await client.command("ur3e", "go_to_home_pose")
            assert isinstance(excinfo.value, ConnectionError)
        finally:
            await service.stop()

    run(scenario())


def test_drain_refuses_with_draining_code_then_respawns():
    async def scenario():
        service = ShardService(ShardConfig(workers=1, watchdog_interval=0.02))
        await service.start()
        try:
            held = await _open_pinned(service, worker=0)
            restart = asyncio.get_running_loop().create_task(
                service.restart_worker(0)
            )
            # The drain lands asynchronously; once it has, opens are
            # refused with the retryable draining code while the held
            # session keeps the old worker alive.
            deadline = asyncio.get_running_loop().time() + 10.0
            while True:
                try:
                    refused = await _open_pinned(service, worker=0)
                    await refused.close()
                except ServeUnavailableError as exc:
                    assert exc.code in ("draining", "worker-unavailable")
                    if exc.code == "draining":
                        break
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.02)
            assert (await held.command("ur3e", "go_to_home_pose"))["ok"]

            # Closing the held session lets the drain complete; the
            # replacement then accepts sessions again.
            await held.close()
            await restart
            assert service.workers[0].respawns == 1
            reopened = await _open_pinned(service, worker=0)
            assert (await reopened.command("ur3e", "go_to_home_pose"))["ok"]
            await reopened.close()
        finally:
            await service.stop()

    run(scenario())


def test_metrics_and_healthz_endpoints():
    async def scenario():
        service = ShardService(
            ShardConfig(
                workers=2, metrics_port=0, enable_obs=True, respawn=False,
                watchdog_interval=0.02,
            )
        )
        await service.start()
        try:
            port = service.config.metrics_port
            client = await _open_pinned(service, worker=0)
            assert (await client.command("ur3e", "go_to_home_pose"))["ok"]
            await client.close()

            status, text = await _http_get(port, "/metrics")
            assert status == 200
            assert "shard_workers 2" in text
            assert "shard_workers_alive 2" in text
            assert "shard_commands 1" in text
            # Worker-side obs metrics survive the merge into the scrape.
            assert 'serve_commands_total{outcome="allowed"} 1' in text

            status, body = await _http_get(port, "/healthz")
            assert status == 200
            assert '"ok":true' in body

            status, _ = await _http_get(port, "/nope")
            assert status == 404

            # Kill a worker with respawn disabled: health flips to 503
            # and names the dead shard.
            os.kill(service.workers[1].process.pid, signal.SIGKILL)
            deadline = asyncio.get_running_loop().time() + 10.0
            while True:
                status, body = await _http_get(port, "/healthz")
                if status == 503:
                    break
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.02)
            assert '"ok":false' in body
            assert '"alive":false' in body
            status, text = await _http_get(port, "/metrics")
            assert status == 200
            assert "shard_workers_alive 1" in text
        finally:
            await service.stop()

    run(scenario())


def test_merged_stats_equal_sum_of_worker_work():
    async def scenario():
        service = ShardService(ShardConfig(workers=2))
        await service.start()
        try:
            for worker, commands in ((0, 3), (1, 2)):
                client = await _open_pinned(service, worker=worker)
                for _ in range(commands):
                    await client.command("ur3e", "go_to_home_pose")
                await client.close()
            stats_client = await ServeClient.open_tcp(
                service.config.host, service.config.port
            )
            merged = (await stats_client.request({"op": "stats"}))["stats"]
            await stats_client.close()
            assert merged["totals"]["commands"] == 5
            assert merged["totals"]["sessions_opened"] == 2
            assert [p["commands"] for p in merged["per_worker"]] == [3, 2]
            assert merged["router"]["sessions_routed"] == 2
            assert merged["supervisor"]["workers_respawned"] == 0
        finally:
            await service.stop()

    run(scenario())
