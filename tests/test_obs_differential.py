"""Differential harness: observability must be a pure observer.

Two invariants gate the tentpole:

1. **Verdict invariance** — running the full Table III/IV controlled
   rule-violation suite with observability enabled produces exactly the
   same alerts (kind, rule attribution, message) as with it disabled.
2. **Latency invariance** — the §II-C virtual-clock figures are
   bit-identical with observability on, because spans only *read* the
   virtual clock and never advance it.

Plus the positive half of the acceptance criterion: with observability
on, a full monitored scenario actually populates interceptor,
rulebase-cache, and collision-sweep metrics.
"""

from __future__ import annotations

import pytest

from repro.analysis.latency import measure_workflow_latency
from repro.core.monitor import RabitOptions
from repro.lab.scenarios import ALL_SCENARIOS, run_scenario
from repro.obs import OBS


@pytest.fixture(autouse=True)
def _clean_global_obs():
    OBS.disable()
    OBS.reset()
    yield
    OBS.disable()
    OBS.reset()


def _scenario_verdicts():
    """(rule_id, alert kind, alert rule, message) for every scenario."""
    options = RabitOptions.modified(use_extended_simulator=True, bypass_gui=True)
    out = []
    for scenario in ALL_SCENARIOS:
        outcome = run_scenario(scenario, options=options)
        alert = outcome.alert
        out.append(
            (
                scenario.rule_id,
                alert.kind.value if alert else None,
                alert.rule_id if alert else None,
                alert.message if alert else None,
            )
        )
    return out


def test_observability_changes_no_verdicts():
    baseline = _scenario_verdicts()
    OBS.enable()
    observed = _scenario_verdicts()
    OBS.disable()
    assert observed == baseline
    # And the observed pass really was observed, not silently disabled.
    intercepted = OBS.registry.get("rabit_commands_intercepted_total")
    assert intercepted is not None and intercepted.total() > 0


def test_observability_changes_no_latency_figures():
    baseline = {
        name: (r.commands, r.experiment_seconds, r.rabit_seconds)
        for name, r in measure_workflow_latency().items()
    }
    OBS.enable()
    observed = {
        name: (r.commands, r.experiment_seconds, r.rabit_seconds)
        for name, r in measure_workflow_latency().items()
    }
    OBS.disable()
    assert observed == baseline


def test_observed_scenario_covers_the_hot_path():
    """Acceptance: interceptor, rule cache, and collision sweep all show up."""
    OBS.enable()
    options = RabitOptions.modified(use_extended_simulator=True, bypass_gui=True)
    for scenario in ALL_SCENARIOS[:4]:
        run_scenario(scenario, options=options)
    OBS.disable()

    reg = OBS.registry
    assert reg.get("rabit_commands_intercepted_total").total() > 0
    lookups = reg.get("rabit_rule_cache_lookups_total")
    assert lookups.total() > 0
    assert reg.get("es_trajectory_checks_total").total() > 0
    assert reg.get("es_segments_swept_total").total() > 0
    assert reg.get("geometry_pair_checks_total").total() > 0
    assert reg.get("rabit_alerts_total").total() > 0
    assert reg.get("device_commands_total").total() > 0
    # Spans recorded for the same activity, nested under guards.
    names = {span.name for span in OBS.collector.spans()}
    assert {"intercept.command", "rabit.guard", "rabit.validate",
            "rabit.fetch_state"} <= names
    parents = {s.span_id: s for s in OBS.collector.spans()}
    for span in OBS.collector.spans():
        if span.name == "rabit.guard" and span.parent_id is not None:
            assert parents[span.parent_id].name == "intercept.command"


def test_session_report_gains_observability_section():
    from repro.analysis.session_report import render_session_report
    from repro.lab.hein import build_hein_deck, make_hein_rabit

    deck = build_hein_deck()
    rabit, proxies, trace = make_hein_rabit(deck)
    OBS.enable()
    OBS.bind_clock(rabit.clock)
    proxies["dosing_device"].open_door()
    proxies["dosing_device"].close_door()
    OBS.disable()
    report = render_session_report(trace, rabit.alerts, deck.world)
    assert "Observability" in report
    assert "commands intercepted:  2" in report
    assert "spans recorded:" in report

    # Without any recorded spans the section is absent.
    OBS.reset()
    report = render_session_report(trace, rabit.alerts, deck.world)
    assert "Observability" not in report
