"""CLI coverage for ``python -m repro record`` / ``replay``.

Exit-code contract: 0 when every trace replays byte-identically, 1 on a
divergence (with ``--diff`` printing the first one field-by-field), 2
when a trace file is corrupt, truncated, of an unknown schema version,
or the record request itself is invalid.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.trace import SCHEMA_VERSION, RunTrace

FIXTURES = Path(__file__).parent / "fixtures" / "traces"
GOLDEN = FIXTURES / "multi-door-2024.trace.jsonl"


@pytest.fixture()
def recorded(tmp_path, capsys):
    """A freshly CLI-recorded multi-door trace."""
    path = tmp_path / "md.trace.jsonl"
    assert main(["record", "--workload", "multi_door", "--out", str(path)]) == 0
    capsys.readouterr()
    return path


def _rewrite(src: Path, dst: Path, mutate) -> Path:
    """Load *src*'s JSONL docs, apply *mutate* to the list, write *dst*."""
    docs = [json.loads(line) for line in src.read_text().splitlines()]
    mutate(docs)
    dst.write_text("".join(json.dumps(d, sort_keys=True) + "\n" for d in docs))
    return dst


class TestRecord:
    def test_record_writes_a_replayable_trace(self, recorded, capsys):
        trace = RunTrace.read_jsonl(recorded)
        assert trace.header["workload"] == "multi_door"
        assert main(["replay", str(recorded)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_record_with_params(self, tmp_path, capsys):
        path = tmp_path / "mutant.trace.jsonl"
        assert main([
            "record", "--workload", "mutant",
            "--param", "seed=2024", "--param", "index=0",
            "--out", str(path),
        ]) == 0
        trace = RunTrace.read_jsonl(path)
        assert trace.header["params"] == {"seed": 2024, "index": 0}

    def test_unknown_workload_exits_two(self, tmp_path, capsys):
        assert main([
            "record", "--workload", "nope",
            "--out", str(tmp_path / "x.jsonl"),
        ]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_malformed_param_exits_two(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "record", "--workload", "mutant", "--param", "seed",
                "--out", str(tmp_path / "x.jsonl"),
            ])


class TestReplay:
    def test_golden_trace_exits_zero(self, capsys):
        assert main(["replay", str(GOLDEN)]) == 0

    def test_divergence_exits_one_with_first_diff(self, recorded, tmp_path, capsys):
        def tamper(docs):
            docs[3]["args"] = ["tampered"]

        bad = _rewrite(recorded, tmp_path / "tampered.trace.jsonl", tamper)
        assert main(["replay", str(bad), "--diff"]) == 1
        out = capsys.readouterr().out
        assert "MISMATCH" in out
        assert "first divergence at event 2" in out
        assert "tampered" in out and "recorded:" in out and "replayed:" in out

    def test_corrupt_json_exits_two(self, recorded, tmp_path, capsys):
        bad = tmp_path / "corrupt.trace.jsonl"
        text = recorded.read_text().splitlines()
        text[2] = '{"type": "command", truncated'
        bad.write_text("\n".join(text) + "\n")
        assert main(["replay", str(bad)]) == 2
        assert "line 3 is not valid JSON" in capsys.readouterr().err

    def test_truncated_trace_exits_two(self, recorded, tmp_path, capsys):
        bad = tmp_path / "truncated.trace.jsonl"
        lines = recorded.read_text().splitlines()
        bad.write_text("\n".join(lines[:-1]) + "\n")  # drop the footer
        assert main(["replay", str(bad)]) == 2
        assert "truncated" in capsys.readouterr().err

    def test_event_count_mismatch_exits_two(self, recorded, tmp_path, capsys):
        def drop_event(docs):
            del docs[1]  # footer still declares the original count

        bad = _rewrite(recorded, tmp_path / "short.trace.jsonl", drop_event)
        assert main(["replay", str(bad)]) == 2
        assert "truncated" in capsys.readouterr().err

    def test_unknown_schema_version_exits_two(self, recorded, tmp_path, capsys):
        def from_the_future(docs):
            docs[0]["schema_version"] = SCHEMA_VERSION + 97

        bad = _rewrite(recorded, tmp_path / "future.trace.jsonl", from_the_future)
        assert main(["replay", str(bad)]) == 2
        assert (
            f"unsupported trace schema_version {SCHEMA_VERSION + 97}"
            in capsys.readouterr().err
        )

    def test_missing_file_exits_two(self, capsys):
        assert main(["replay", "/nonexistent/run.trace.jsonl"]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestSchemaUpgrade:
    def test_v1_trace_upgrades_and_replays(self, recorded, tmp_path, capsys):
        """A downgraded v1 file (old field names, verbose deltas) is
        upgraded on read and still replays byte-identically."""

        def downgrade(docs):
            docs[0]["schema_version"] = 1
            for doc in docs[1:]:
                if doc.get("type") != "command":
                    continue
                doc["time"] = doc.pop("t")
                doc["state_delta"] = [
                    {"var": var, "key": key, "value": value}
                    for var, key, value in doc["state_delta"]
                ]

        old = _rewrite(recorded, tmp_path / "v1.trace.jsonl", downgrade)
        upgraded = RunTrace.read_jsonl(old)
        assert upgraded.schema_version == SCHEMA_VERSION
        assert upgraded.canonical_bytes() == RunTrace.read_jsonl(recorded).canonical_bytes()
        assert main(["replay", str(old)]) == 0
