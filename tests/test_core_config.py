"""Unit tests for JSON configuration validation and model building.

The validator targets the pilot study's observed error classes: JSON
syntax errors, sign errors in coordinates, unknown device types/classes,
and malformed cuboids.
"""

import json

import pytest

from repro.core.config import (
    ConfigError,
    build_model,
    load_model,
    parse_config_text,
    validate_config,
)
from repro.devices.base import DeviceKind
from repro.lab.hein import build_hein_deck


@pytest.fixture()
def hein_config():
    return build_hein_deck().config


def errors_of(issues):
    return [i for i in issues if i.severity == "error"]


def warnings_of(issues):
    return [i for i in issues if i.severity == "warning"]


class TestParse:
    def test_valid_json(self):
        assert parse_config_text('{"devices": []}') == {"devices": []}

    def test_syntax_error_reported_with_line(self):
        with pytest.raises(ConfigError) as excinfo:
            parse_config_text('{"devices": [,]}')
        assert "JSON syntax error" in str(excinfo.value)

    def test_non_object_top_level(self):
        with pytest.raises(ConfigError, match="top level"):
            parse_config_text("[1, 2, 3]")


class TestValidateDevices:
    def test_valid_hein_config_has_no_errors(self, hein_config):
        assert errors_of(validate_config(hein_config)) == []

    def test_missing_devices_list(self):
        assert errors_of(validate_config({}))

    def test_unknown_device_type(self, hein_config):
        hein_config["devices"][0]["type"] = "teleporter"
        issues = errors_of(validate_config(hein_config))
        assert any("unknown device type" in i.message for i in issues)

    def test_unknown_class_name(self, hein_config):
        hein_config["devices"][1]["class"] = "MagicDoser"
        issues = errors_of(validate_config(hein_config))
        assert any("unknown device class" in i.message for i in issues)

    def test_duplicate_device_names(self, hein_config):
        hein_config["devices"].append(dict(hein_config["devices"][0]))
        issues = errors_of(validate_config(hein_config))
        assert any("duplicate device" in i.message for i in issues)

    def test_robot_needs_frame(self, hein_config):
        del hein_config["devices"][0]["frame"]
        issues = errors_of(validate_config(hein_config))
        assert any("coordinate frame" in i.message for i in issues)

    def test_negative_threshold(self, hein_config):
        hein_config["devices"][3]["threshold"] = -5
        issues = errors_of(validate_config(hein_config))
        assert any("threshold" in i.path for i in issues)

    def test_bad_door_initial(self, hein_config):
        hein_config["devices"][1]["door"]["initial"] = "ajar"
        issues = errors_of(validate_config(hein_config))
        assert any("door.initial" in i.path for i in issues)


class TestValidateLocations:
    def test_sign_error_warning(self, hein_config):
        # The pilot-study error: "a negative sign instead of a positive
        # sign in a location".
        hein_config["locations"][0]["coords"]["ur3e"] = [0.3, -0.05, -0.12]
        issues = validate_config(hein_config)
        assert any("sign error" in i.message for i in warnings_of(issues))
        assert errors_of(issues) == []  # warning, not blocking

    def test_wrong_arity_coordinates(self, hein_config):
        hein_config["locations"][0]["coords"]["ur3e"] = [0.3, -0.05]
        issues = errors_of(validate_config(hein_config))
        assert any("expected [x, y, z]" in i.message for i in issues)

    def test_unknown_location_kind(self, hein_config):
        hein_config["locations"][0]["kind"] = "nowhere"
        issues = errors_of(validate_config(hein_config))
        assert any("unknown location kind" in i.message for i in issues)

    def test_duplicate_location_names(self, hein_config):
        hein_config["locations"].append(dict(hein_config["locations"][0]))
        issues = errors_of(validate_config(hein_config))
        assert any("duplicate location" in i.message for i in issues)

    def test_unknown_owner_is_warning(self, hein_config):
        hein_config["locations"][4]["device"] = "mystery_box"
        issues = validate_config(hein_config)
        assert errors_of(issues) == []
        assert any("mystery_box" in i.message for i in warnings_of(issues))


class TestValidateObstacles:
    def test_inverted_cuboid_flagged_as_sign_error(self, hein_config):
        hein_config["obstacles"][1]["frames"]["ur3e"]["min"][0] = 5.0
        issues = errors_of(validate_config(hein_config))
        assert any("sign error" in i.message for i in issues)

    def test_missing_corner(self, hein_config):
        del hein_config["obstacles"][0]["frames"]["ur3e"]["max"]
        issues = errors_of(validate_config(hein_config))
        assert any("'min' and 'max'" in i.message for i in issues)


class TestBuildModel:
    def test_builds_hein_model(self, hein_config):
        model = build_model(hein_config)
        assert model.lab_name == "hein"
        assert model.device("dosing_device").has_door
        assert model.device("hotplate").threshold == 120.0
        assert model.device("ur3e").kind is DeviceKind.ROBOT_ARM
        assert model.reliable_container_tracking
        assert "ur3e" in model.workspace_bounds
        assert model.custom_rule_ids == ["C1", "C2", "C3", "C4"]

    def test_interior_owner_resolution(self, hein_config):
        model = build_model(hein_config)
        assert model.interior_owner("dosing_interior") == "dosing_device"
        assert model.interior_owner("grid_a1") is None
        assert model.interior_owner(None) is None

    def test_load_location_resolution(self, hein_config):
        model = build_model(hein_config)
        assert model.load_location("hotplate") == "hotplate_top"
        assert model.load_location("syringe_pump") == "hotplate_top"
        assert model.load_location("ur3e") is None

    def test_obstacles_split_by_surface(self, hein_config):
        model = build_model(hein_config)
        surface_names = {c.name for c in model.surfaces_for_frame("ur3e")}
        obstacle_names = {c.name for c in model.obstacles_for_frame("ur3e")}
        assert "platform" in surface_names
        assert "grid" in obstacle_names
        assert not surface_names & obstacle_names

    def test_build_rejects_invalid(self, hein_config):
        hein_config["devices"][0]["type"] = "teleporter"
        with pytest.raises(ConfigError):
            build_model(hein_config)

    def test_load_model_from_text_and_dict(self, hein_config):
        from_dict = load_model(hein_config)
        from_text = load_model(json.dumps(hein_config))
        assert from_dict.lab_name == from_text.lab_name == "hein"

    def test_load_model_from_file(self, hein_config, tmp_path):
        path = tmp_path / "lab.json"
        path.write_text(json.dumps(hein_config))
        assert load_model(path).lab_name == "hein"
