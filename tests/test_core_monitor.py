"""Tests for the Fig. 2 monitor loop, using the Hein deck end to end."""

import pytest

from repro.core.actions import ActionLabel
from repro.core.errors import AlertKind, SafetyViolation
from repro.core.monitor import RabitOptions
from repro.lab.hein import build_hein_deck, make_hein_rabit


class TestInitialization:
    def test_initialize_acquires_observables(self):
        deck = build_hein_deck()
        rabit, _, _ = make_hein_rabit(deck)
        # S_initial includes the dosing device's closed door and the
        # centrifuge's open lid, straight from status commands.
        assert rabit.state.get("door_status", "dosing_device") == "closed"
        assert rabit.state.get("door_status", "centrifuge") == "open"
        assert rabit.state.get("red_dot", "centrifuge") == "N"

    def test_seeded_inventory_survives_initialize(self):
        deck = build_hein_deck()
        rabit, _, _ = make_hein_rabit(deck)
        assert rabit.state.get("container_at", "vial_1") == "grid_a1"
        assert rabit.state.get("container_solid", "vial_1") == 0.0


class TestGuardFlow:
    def test_precondition_alert_prevents_execution(self):
        deck = build_hein_deck()
        rabit, proxies, _ = make_hein_rabit(deck)
        with pytest.raises(SafetyViolation) as excinfo:
            proxies["ur3e"].move_to_location("dosing_interior")
        assert excinfo.value.alert.kind is AlertKind.INVALID_COMMAND
        assert excinfo.value.alert.rule_id == "G1"
        # The arm never moved; ground truth recorded nothing.
        assert not deck.world.damage_log
        assert not deck.world.robot_inside("ur3e")

    def test_alert_log_grows(self):
        deck = build_hein_deck()
        rabit, proxies, _ = make_hein_rabit(deck)
        with pytest.raises(SafetyViolation):
            proxies["hotplate"].stir_solution(60)  # G5: nothing loaded
        assert rabit.alert_count == 1
        assert rabit.last_alert().rule_id == "G5"

    def test_failsafe_mode_logs_without_raising(self):
        deck = build_hein_deck()
        options = RabitOptions.modified(preemptive_stop=False)
        rabit, proxies, _ = make_hein_rabit(deck, options=options)
        proxies["hotplate"].stir_solution(60)  # violates G5, no exception
        assert rabit.alert_count == 1
        # The vetoed command was still skipped: the hotplate never ran.
        assert not deck.devices["hotplate"].active

    def test_safe_command_updates_state(self):
        deck = build_hein_deck()
        rabit, proxies, _ = make_hein_rabit(deck)
        proxies["dosing_device"].open_door()
        assert rabit.state.get("door_status", "dosing_device") == "open"


class TestDeviceMalfunction:
    def test_jammed_door_raises_malfunction(self):
        deck = build_hein_deck()
        rabit, proxies, _ = make_hein_rabit(deck)
        deck.devices["dosing_device"].door.jam()
        with pytest.raises(SafetyViolation) as excinfo:
            proxies["dosing_device"].open_door()
        alert = excinfo.value.alert
        assert alert.kind is AlertKind.DEVICE_MALFUNCTION
        assert "door_status" in alert.message

    def test_malfunction_adopts_actual_state(self):
        deck = build_hein_deck()
        options = RabitOptions.modified(preemptive_stop=False)
        rabit, proxies, _ = make_hein_rabit(deck, options=options)
        deck.devices["dosing_device"].door.jam()
        proxies["dosing_device"].open_door()
        assert rabit.alert_count == 1
        # Line 16 of Fig. 2: S_current <- S_actual (door still closed).
        assert rabit.state.get("door_status", "dosing_device") == "closed"

    def test_silent_skip_is_invisible(self):
        # The §IV category-4 ViperX behaviour transplanted to the monitor:
        # a skipped move leaves no observable discrepancy, because
        # position is not a tracked state variable.
        from repro.testbed.deck import build_testbed_deck, make_testbed_rabit

        deck = build_testbed_deck()
        rabit, proxies, _ = make_testbed_rabit(deck)
        proxies["viperx"].move_to_location([0.62, -0.38, 0.35])  # unreachable
        assert rabit.alert_count == 0


class TestLatencyAccounting:
    def test_bookkeeping_charged_per_command(self):
        deck = build_hein_deck()
        rabit, proxies, _ = make_hein_rabit(deck)
        before = rabit.clock.spent("rabit_bookkeeping")
        proxies["dosing_device"].open_door()
        assert rabit.clock.spent("rabit_bookkeeping") > before

    def test_gui_charged_only_with_simulator(self):
        deck = build_hein_deck()
        rabit, proxies, _ = make_hein_rabit(deck, use_extended_simulator=True)
        proxies["dosing_device"].open_door()
        assert rabit.clock.spent("rabit_simulator_gui") >= 2.0

        deck2 = build_hein_deck()
        rabit2, proxies2, _ = make_hein_rabit(deck2)
        proxies2["dosing_device"].open_door()
        assert rabit2.clock.spent("rabit_simulator_gui") == 0.0

    def test_gui_bypass(self):
        deck = build_hein_deck()
        options = RabitOptions.modified(use_extended_simulator=True, bypass_gui=True)
        rabit, proxies, _ = make_hein_rabit(deck, options=options, use_extended_simulator=True)
        proxies["dosing_device"].open_door()
        assert rabit.clock.spent("rabit_simulator_gui") == 0.0


class TestExtraPreconditions:
    def test_registered_precondition_vetoes(self):
        deck = build_hein_deck()
        rabit, proxies, _ = make_hein_rabit(deck)
        rabit.model.extra_preconditions.append(
            lambda state, call: "curfew" if call.label is ActionLabel.OPEN_DOOR else None
        )
        with pytest.raises(SafetyViolation, match="curfew"):
            proxies["dosing_device"].open_door()

    def test_observers_called_after_execution(self):
        deck = build_hein_deck()
        rabit, proxies, _ = make_hein_rabit(deck)
        seen = []
        rabit.observers.append(lambda call: seen.append(call.label))
        proxies["dosing_device"].open_door()
        assert seen == [ActionLabel.OPEN_DOOR]
