"""Tests for the §II-B / §V-B extension features: the fail-safe recovery
policy and the proximity-sensor device class with its S1 rule."""

import pytest

from repro.core.errors import SafetyViolation
from repro.core.failsafe import FailSafePolicy
from repro.core.sensor_rule import make_proximity_rule
from repro.devices.base import DeviceKind
from repro.devices.sensor import ProximitySensor
from repro.geometry.shapes import Cuboid
from repro.lab.hein import build_hein_deck, make_hein_rabit


@pytest.fixture()
def wired():
    deck = build_hein_deck()
    rabit, proxies, trace = make_hein_rabit(deck)
    return deck, rabit, proxies


class TestFailSafePolicy:
    def test_recovers_arm_holding_vial(self, wired):
        deck, rabit, proxies = wired
        ur3e = proxies["ur3e"]
        ur3e.move_to_location("grid_a1_safe")
        ur3e.pick_up_vial("grid_a1")
        ur3e.move_to_location("grid_a1_safe")

        # A bug now triggers a stop while the arm holds the vial.
        with pytest.raises(SafetyViolation) as excinfo:
            ur3e.move_to_location("dosing_interior")  # door closed: G1

        policy = FailSafePolicy(
            proxies, safe_drop_locations={"ur3e": ("grid_a1_safe", "grid_a1")}
        )
        report = policy.recover(excinfo.value.alert)

        assert report.fully_recovered, report.steps
        vial = deck.vials["vial_1"]
        assert vial.resting_at == "grid_a1" and not vial.broken
        assert deck.ur3e.holding is None
        import numpy as np

        assert np.allclose(deck.ur3e.kinematics.q, deck.ur3e.profile.sleep_q)

    def test_stops_running_devices(self, wired):
        deck, rabit, proxies = wired
        # Put a filled vial on the hotplate and start it legitimately.
        vial = deck.vials["vial_1"]
        vial.contents.solid_mg = 5.0
        rabit.seed_tracked("container_solid", "vial_1", 5.0)
        ur3e = proxies["ur3e"]
        vialp = proxies["vial_1"]
        vialp.decap_vial()
        ur3e.move_to_location("grid_a1_safe")
        ur3e.pick_up_vial("grid_a1")
        ur3e.move_to_location("grid_a1_safe")
        ur3e.move_to_location("hotplate_safe")
        ur3e.place_vial("hotplate_top")
        ur3e.move_to_location("hotplate_safe")
        proxies["hotplate"].stir_solution(60)
        assert deck.devices["hotplate"].active

        with pytest.raises(SafetyViolation) as excinfo:
            ur3e.move_to_location("dosing_interior")
        report = FailSafePolicy(proxies).recover(excinfo.value.alert)
        assert not deck.devices["hotplate"].active
        assert any("hotplate: stop" in action for action, _ in report.steps)

    def test_unconfigured_drop_is_flagged_not_fatal(self, wired):
        deck, rabit, proxies = wired
        ur3e = proxies["ur3e"]
        ur3e.move_to_location("grid_a1_safe")
        ur3e.pick_up_vial("grid_a1")
        ur3e.move_to_location("grid_a1_safe")
        with pytest.raises(SafetyViolation) as excinfo:
            ur3e.move_to_location("dosing_interior")
        report = FailSafePolicy(proxies).recover(excinfo.value.alert)
        assert any("no safe drop configured" in outcome for _, outcome in report.steps)

    def test_recovery_never_raises(self, wired):
        deck, rabit, proxies = wired
        with pytest.raises(SafetyViolation) as excinfo:
            proxies["ur3e"].move_to_location("dosing_interior")
        report = FailSafePolicy(proxies).recover(excinfo.value.alert)
        assert report.triggering_alert is excinfo.value.alert


class TestProximitySensor:
    ZONE = Cuboid((0.2, -0.2, 0.0), (0.5, 0.2, 0.5), name="shared_zone")

    def _wire_sensor(self, deck, rabit):
        sensor = ProximitySensor("curtain", zones={"ur3e": self.ZONE})
        deck.world.add_device(sensor)
        rabit.devices["curtain"] = sensor
        rabit.rulebase.add(
            make_proximity_rule({"curtain": sensor}, robots={"ur3e": deck.ur3e})
        )
        rabit.initialize()  # pick up the sensor's initial reading
        return sensor

    def test_sensor_is_fifth_device_kind(self):
        sensor = ProximitySensor("s", zones={"arm": self.ZONE})
        assert sensor.kind is DeviceKind.SENSOR
        assert sensor.status() == {"occupied": False}

    def test_empty_zone_allows_moves(self, wired):
        deck, rabit, proxies = wired
        self._wire_sensor(deck, rabit)
        proxies["ur3e"].move_to_location("grid_a1_safe")  # inside the zone
        assert rabit.alert_count == 0

    def test_occupied_zone_vetoes_entry(self, wired):
        deck, rabit, proxies = wired
        sensor = self._wire_sensor(deck, rabit)
        sensor.person_enters()
        with pytest.raises(SafetyViolation, match="occupied"):
            proxies["ur3e"].move_to_location("grid_a1_safe")
        assert rabit.last_alert().rule_id == "S1"

    def test_zone_frees_after_person_leaves(self, wired):
        deck, rabit, proxies = wired
        sensor = self._wire_sensor(deck, rabit)
        sensor.person_enters()
        with pytest.raises(SafetyViolation):
            proxies["ur3e"].move_to_location("grid_a1_safe")
        sensor.person_leaves()
        # The next FetchState refreshes the bit; any command does.
        proxies["dosing_device"].open_door()
        proxies["ur3e"].move_to_location("grid_a1_safe")
        assert rabit.last_alert().rule_id == "S1"  # no new alerts since

    def test_path_through_zone_vetoed(self, wired):
        deck, rabit, proxies = wired
        sensor = self._wire_sensor(deck, rabit)
        proxies["ur3e"].move_to_location([0.1, -0.3, 0.3])  # outside zone
        sensor.person_enters()
        proxies["dosing_device"].open_door()  # refresh the sensor bit
        with pytest.raises(SafetyViolation, match="would cross"):
            # Target outside the zone, but the straight path crosses it.
            proxies["ur3e"].move_to_location([0.45, 0.3, 0.3])

    def test_stuck_sensor_reproduces_false_alarms(self, wired):
        # The Berlinguette complaint: flaky sensors alarm constantly.
        deck, rabit, proxies = wired
        sensor = self._wire_sensor(deck, rabit)
        sensor.stick_reading(True)  # zone actually empty
        proxies["dosing_device"].open_door()
        with pytest.raises(SafetyViolation):
            proxies["ur3e"].move_to_location("grid_a1_safe")
        sensor.stick_reading(None)

    def test_sensor_requires_a_zone(self):
        with pytest.raises(ValueError, match="at least one zone"):
            ProximitySensor("s", zones={})
