"""Tests for the RAD substitute: traces, generation, and mining."""

import pytest

from repro.rad.mining import mine_and_classify, mine_door_rules, mine_precedence_rules
from repro.rad.trace import Trace, TraceDataset, TraceEvent


def ev(label, device="dev", kind="action_device", target=None, t=0.0):
    return TraceEvent(
        time=t, device=device, device_kind=kind, label=label, target_device=target
    )


def trace(lab, *labels, session="s0"):
    return Trace(
        session_id=session,
        lab=lab,
        events=[ev(label, t=float(i)) for i, label in enumerate(labels)],
    )


class TestTraceDataset:
    def test_jsonl_roundtrip(self, tmp_path):
        ds = TraceDataset(
            name="t",
            traces=[
                Trace("s0", "hein", [ev("open_door"), ev("close_door")]),
                Trace("s1", "hein", [ev("start_action")]),
            ],
        )
        path = tmp_path / "traces.jsonl"
        ds.to_jsonl(path)
        loaded = TraceDataset.from_jsonl(path)
        assert len(loaded) == 2
        assert loaded.traces[0].events[0].label == "open_door"
        assert loaded.total_events() == 3

    def test_labs_listing(self):
        ds = TraceDataset(
            "t", [Trace("a", "hein", []), Trace("b", "berlinguette", [])]
        )
        assert ds.labs() == ("berlinguette", "hein")


class TestPrecedenceMining:
    def test_finds_invariant(self):
        traces = [trace("hein", "open_door", "start_action", session=f"s{i}") for i in range(6)]
        rules = mine_precedence_rules(TraceDataset("t", traces), min_support=5)
        pairs = {(r.antecedent[0], r.consequent[0]) for r in rules}
        assert ("open_door", "start_action") in pairs

    def test_violated_invariant_dropped(self):
        traces = [trace("hein", "open_door", "start_action", session=f"s{i}") for i in range(5)]
        traces.append(trace("hein", "start_action", session="bad"))
        rules = mine_precedence_rules(TraceDataset("t", traces), min_support=5)
        pairs = {(r.antecedent[0], r.consequent[0]) for r in rules}
        assert ("open_door", "start_action") not in pairs

    def test_existential_semantics(self):
        # One antecedent licenses several later consequents.
        traces = [
            trace("hein", "start_dosing", "dose_liquid", "dose_liquid", "dose_liquid",
                  session=f"s{i}")
            for i in range(2)
        ]
        rules = mine_precedence_rules(TraceDataset("t", traces), min_support=5)
        pairs = {(r.antecedent[0], r.consequent[0]) for r in rules}
        assert ("start_dosing", "dose_liquid") in pairs

    def test_min_support_floor(self):
        traces = [trace("hein", "open_door", "start_action")]
        rules = mine_precedence_rules(TraceDataset("t", traces), min_support=5)
        assert rules == []


class TestClassification:
    def _both_labs(self):
        hein = [
            trace("hein", "start_dosing", "dose_liquid", session=f"h{i}")
            for i in range(6)
        ]
        # Berlinguette legitimately doses liquid with no prior solid.
        berl = [trace("berlinguette", "dose_liquid", session=f"b{i}") for i in range(6)]
        return TraceDataset("t", hein + berl)

    def test_single_lab_invariant_is_custom(self):
        ds = self._both_labs()
        classified = mine_and_classify(ds, min_support=3)
        custom = [
            r for r in classified
            if r.antecedent[0] == "start_dosing" and r.consequent[0] == "dose_liquid"
        ]
        assert custom and custom[0].scope == "custom" and custom[0].lab == "hein"
        assert "custom:hein" in custom[0].describe()

    def test_cross_lab_invariant_is_general(self):
        hein = [trace("hein", "open_door", "close_door", session=f"h{i}") for i in range(5)]
        berl = [
            trace("berlinguette", "open_door", "close_door", session=f"b{i}")
            for i in range(5)
        ]
        classified = mine_and_classify(TraceDataset("t", hein + berl), min_support=3)
        target = [
            r for r in classified
            if r.antecedent[0] == "open_door" and r.consequent[0] == "close_door"
        ]
        assert target and target[0].scope == "general"


class TestDoorRules:
    def test_mined_when_entries_follow_opens(self):
        events = [
            ev("open_door", device="doser"),
            ev("move_robot_inside", device="arm", kind="robot_arm", target="doser"),
            ev("close_door", device="doser"),
        ]
        ds = TraceDataset("t", [Trace(f"s{i}", "hein", list(events)) for i in range(4)])
        rules = mine_door_rules(ds, min_support=3)
        assert len(rules) == 1
        assert rules[0].device == "doser" and rules[0].holds

    def test_violation_counted(self):
        events = [
            ev("open_door", device="doser"),
            ev("close_door", device="doser"),
            ev("move_robot_inside", device="arm", kind="robot_arm", target="doser"),
        ]
        ds = TraceDataset("t", [Trace(f"s{i}", "hein", list(events)) for i in range(4)])
        rules = mine_door_rules(ds, min_support=3)
        assert rules and not rules[0].holds
        assert rules[0].violations == 4

    def test_unknown_initial_state_not_judged(self):
        events = [
            ev("move_robot_inside", device="arm", kind="robot_arm", target="doser"),
            ev("open_door", device="doser"),
        ]
        ds = TraceDataset("t", [Trace(f"s{i}", "hein", list(events)) for i in range(4)])
        rules = mine_door_rules(ds, min_support=3)
        assert rules and rules[0].holds  # pre-open entry not judged


class TestGeneratedDatasets:
    @pytest.fixture(scope="class")
    def small_combined(self):
        from repro.rad.generator import generate_combined

        return generate_combined(hein_sessions=3, berlinguette_sessions=3)

    def test_generation_is_alert_free_and_nonempty(self, small_combined):
        assert len(small_combined) == 6
        assert small_combined.total_events() > 100
        assert small_combined.labs() == ("berlinguette", "hein")

    def test_solid_before_liquid_recovered_as_hein_custom(self, small_combined):
        rules = mine_and_classify(small_combined, min_support=3)
        hits = [
            r for r in rules
            if r.antecedent[0] == "start_dosing" and r.consequent[0] == "dose_liquid"
        ]
        assert hits and hits[0].scope == "custom" and hits[0].lab == "hein"

    def test_door_invariants_hold_in_generated_traces(self, small_combined):
        rules = {r.device: r for r in mine_door_rules(small_combined)}
        assert "dosing_device" in rules and rules["dosing_device"].holds


class TestMiningSoundness:
    """Property: every rule the miner returns is consistent with the
    corpus it was mined from (no counterexample exists)."""

    def _verify_rule(self, dataset, rule):
        from repro.rad.mining import _precedence_confidence

        total, satisfied = _precedence_confidence(
            dataset.traces, rule.antecedent, rule.consequent
        )
        return total, satisfied

    def test_mined_rules_have_no_counterexamples(self):
        import numpy as np
        from repro.rad.mining import mine_precedence_rules

        rng = np.random.default_rng(17)
        labels = ["a", "b", "c", "d"]
        traces = []
        for i in range(12):
            # Random sequences with one planted invariant: 'a' always
            # opens each session, so (a < x) rules may be mined.
            events = ["a"] + [labels[int(k)] for k in rng.integers(0, 4, size=10)]
            traces.append(trace("hein", *events, session=f"s{i}"))
        dataset = TraceDataset("rand", traces)
        rules = mine_precedence_rules(dataset, min_support=5)
        assert rules, "the planted invariant should be minable"
        for rule in rules:
            total, satisfied = self._verify_rule(dataset, rule)
            assert satisfied == total >= 5, rule.describe()

    def test_planted_violation_never_survives(self):
        from repro.rad.mining import mine_precedence_rules

        traces = [trace("hein", "a", "b", session=f"s{i}") for i in range(8)]
        traces.append(trace("hein", "b", session="violator"))
        rules = mine_precedence_rules(TraceDataset("t", traces), min_support=5)
        assert not any(
            r.antecedent[0] == "a" and r.consequent[0] == "b" for r in rules
        )


class TestShippedArtifact:
    """The repository ships a pregenerated RAD corpus (data/rad_traces.jsonl)
    so downstream users can run the mining pipeline without regenerating
    traces; it must stay loadable and yield the headline rules."""

    @pytest.fixture(scope="class")
    def shipped(self):
        from pathlib import Path

        path = Path(__file__).parent.parent / "data" / "rad_traces.jsonl"
        return TraceDataset.from_jsonl(path, name="shipped")

    def test_loads_with_both_labs(self, shipped):
        assert shipped.labs() == ("berlinguette", "hein")
        assert len(shipped) == 14
        assert shipped.total_events() > 300

    def test_headline_rules_recoverable(self, shipped):
        rules = mine_and_classify(shipped, min_support=4)
        solid_before_liquid = [
            r for r in rules
            if r.antecedent[0] == "start_dosing" and r.consequent[0] == "dose_liquid"
        ]
        assert solid_before_liquid and solid_before_liquid[0].scope == "custom"
        doors = {r.device: r for r in mine_door_rules(shipped)}
        assert doors["dosing_device"].holds

    def test_matches_regeneration(self, shipped):
        from repro.rad.generator import generate_combined

        regenerated = generate_combined(hein_sessions=8, berlinguette_sessions=6)
        assert regenerated.total_events() == shipped.total_events()
