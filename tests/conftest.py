"""Shared fixtures.

The fault-injection campaign is the most expensive artifact the tests
consult (48 full workflow runs); it is computed once per session and
shared by every test module that asserts against it.
"""

from __future__ import annotations

import pytest

from repro.faults.campaign import CampaignResult, run_campaign


@pytest.fixture(scope="session")
def campaign_result() -> CampaignResult:
    """The full 16-bug x 3-configuration campaign, run once per session."""
    return run_campaign()
