"""Deck-level integration tests: Hein, Berlinguette, and the three-stage
framework — including the paper's zero-false-positives property on every
safe workflow under every monitor configuration."""

import pytest

from repro.core.config import validate_config
from repro.core.monitor import RabitOptions
from repro.devices.base import DeviceKind
from repro.lab.berlinguette import (
    build_berlinguette_deck,
    build_spray_coating_workflow,
    make_berlinguette_rabit,
)
from repro.lab.hein import build_hein_deck, make_hein_rabit
from repro.lab.stage import STAGE_PROFILES, Stage
from repro.lab.workflows import (
    build_centrifuge_workflow,
    build_solubility_workflow,
    build_testbed_workflow,
    run_workflow,
)
from repro.testbed.deck import build_testbed_deck, make_testbed_rabit


class TestHeinDeck:
    def test_config_validates_cleanly(self):
        deck = build_hein_deck()
        assert [i for i in validate_config(deck.config) if i.severity == "error"] == []

    def test_every_location_reachable(self):
        deck = build_hein_deck()
        for loc in deck.world.locations:
            target = loc.coord_for("ur3e")
            plan = deck.ur3e.kinematics.plan_move(target)
            assert not plan.skipped, f"{loc.name} unreachable for UR3e"

    def test_initial_vials_on_grid(self):
        deck = build_hein_deck()
        assert deck.world.occupant("grid_a1") == "vial_1"
        assert deck.world.occupant("grid_a2") == "vial_2"

    @pytest.mark.parametrize("use_es", [False, True], ids=["plain", "with-es"])
    def test_safe_solubility_run_has_zero_false_positives(self, use_es):
        deck = build_hein_deck()
        rabit, proxies, _ = make_hein_rabit(deck, use_extended_simulator=use_es)
        result = run_workflow(build_solubility_workflow(proxies))
        assert result.completed
        assert rabit.alert_count == 0
        assert deck.world.damage_log == ()

    def test_safe_run_chemistry(self):
        deck = build_hein_deck()
        _, proxies, _ = make_hein_rabit(deck)
        run_workflow(build_solubility_workflow(proxies, amount_mg=5, initial_solvent_ml=4, dissolution_rounds=2))
        vial = deck.vials["vial_1"]
        assert vial.contents.solid_mg == pytest.approx(5.0)
        assert vial.contents.liquid_ml == pytest.approx(8.0)  # 4 + 2 + 2
        assert vial.resting_at == "grid_a1"
        assert vial.stoppered and not vial.broken

    def test_safe_run_under_initial_revision_also_clean(self):
        deck = build_hein_deck()
        rabit, proxies, _ = make_hein_rabit(deck, options=RabitOptions.initial())
        result = run_workflow(build_solubility_workflow(proxies))
        assert result.completed and rabit.alert_count == 0


class TestTestbedWorkflows:
    @pytest.mark.parametrize("use_es", [False, True], ids=["plain", "with-es"])
    def test_fig5_workflow_zero_false_positives(self, use_es):
        deck = build_testbed_deck(noise_sigma=0.003)
        rabit, proxies, _ = make_testbed_rabit(deck, use_extended_simulator=use_es)
        result = run_workflow(build_testbed_workflow(proxies))
        assert result.completed
        assert rabit.alert_count == 0
        assert deck.world.damage_log == ()

    def test_fig5_dosing_outcome(self):
        deck = build_testbed_deck(noise_sigma=0.003)
        _, proxies, _ = make_testbed_rabit(deck)
        run_workflow(build_testbed_workflow(proxies))
        vial = deck.vials["vial_t1"]
        assert vial.contents.solid_mg == pytest.approx(5.0)
        assert vial.resting_at == "grid_nw_viperx"

    @pytest.mark.parametrize("use_es", [False, True], ids=["plain", "with-es"])
    def test_centrifuge_leg_zero_false_positives(self, use_es):
        deck = build_testbed_deck(noise_sigma=0.003)
        vial = deck.vials["vial_t1"]
        vial.decap_vial()
        vial.contents.solid_mg = 5.0
        vial.contents.liquid_ml = 5.0
        rabit, proxies, _ = make_testbed_rabit(deck, use_extended_simulator=use_es)
        result = run_workflow(build_centrifuge_workflow(proxies))
        assert result.completed and rabit.alert_count == 0
        assert deck.world.damage_log == ()


class TestBerlinguette:
    def test_all_devices_categorize_into_four_types(self):
        deck = build_berlinguette_deck()
        kinds = set(deck.categorization().values())
        assert kinds <= {k.value for k in DeviceKind}
        # The §V-B mapping specifics:
        assert deck.categorization()["decapper"] == "action_device"
        assert deck.categorization()["syringe_pump"] == "dosing_system"
        assert deck.categorization()["xrf"] == "action_device"

    def test_no_custom_rules_enabled(self):
        deck = build_berlinguette_deck()
        assert deck.model.custom_rule_ids == []

    @pytest.mark.parametrize("solvent_only", [False, True], ids=["full", "solvent-only"])
    def test_spray_coating_clean_under_general_rules(self, solvent_only):
        deck = build_berlinguette_deck()
        rabit, proxies, _ = make_berlinguette_rabit(deck)
        result = run_workflow(
            build_spray_coating_workflow(proxies, solvent_only=solvent_only)
        )
        assert result.completed and rabit.alert_count == 0
        # Solvent-only runs waste nothing worse than low-severity events.
        assert all(d.severity.value == "low" for d in deck.world.damage_log)

    def test_general_rules_still_fire(self):
        from repro.core.errors import SafetyViolation

        deck = build_berlinguette_deck()
        rabit, proxies, _ = make_berlinguette_rabit(deck)
        with pytest.raises(SafetyViolation) as excinfo:
            proxies["ur5e"].move_to_location("bdosing_interior")  # door closed
        assert excinfo.value.alert.rule_id == "G1"

    def test_threshold_rule_on_spray_nozzle(self):
        from repro.core.errors import SafetyViolation

        deck = build_berlinguette_deck()
        rabit, proxies, _ = make_berlinguette_rabit(deck)
        with pytest.raises(SafetyViolation) as excinfo:
            proxies["nozzle"].start_action(80.0)
        assert excinfo.value.alert.rule_id == "G11"


class TestStageFramework:
    def test_table1_band_ordering(self):
        # The exact High/Medium/Low cells of Table I.
        expectations = {
            (Stage.SIMULATOR, "speed"): "High",
            (Stage.TESTBED, "speed"): "Medium",
            (Stage.PRODUCTION, "speed"): "Low",
            (Stage.SIMULATOR, "precision"): "Low",
            (Stage.TESTBED, "precision"): "Medium",
            (Stage.PRODUCTION, "precision"): "High",
            (Stage.SIMULATOR, "accuracy"): "Low",
            (Stage.PRODUCTION, "accuracy"): "High",
            (Stage.SIMULATOR, "risk"): "Low",
            (Stage.PRODUCTION, "risk"): "High",
        }
        for (stage, axis), band in expectations.items():
            assert STAGE_PROFILES[stage].band(axis) == band

    def test_quantities_consistent_with_bands(self):
        sim = STAGE_PROFILES[Stage.SIMULATOR]
        tb = STAGE_PROFILES[Stage.TESTBED]
        prod = STAGE_PROFILES[Stage.PRODUCTION]
        assert sim.time_scale < tb.time_scale <= prod.time_scale
        assert sim.position_noise_sigma <= prod.position_noise_sigma < tb.position_noise_sigma
        assert sim.result_accuracy < tb.result_accuracy < prod.result_accuracy
        assert sim.damage_cost < tb.damage_cost < prod.damage_cost

    def test_unknown_axis_rejected(self):
        with pytest.raises(KeyError):
            STAGE_PROFILES[Stage.SIMULATOR].band("charm")


class TestCrystallizationWorkflow:
    """The second Hein production workflow (thermoshaker agitation)."""

    @pytest.mark.parametrize("use_es", [False, True], ids=["plain", "with-es"])
    def test_zero_false_positives(self, use_es):
        from repro.lab.workflows import build_crystallization_workflow

        deck = build_hein_deck()
        rabit, proxies, _ = make_hein_rabit(deck, use_extended_simulator=use_es)
        result = run_workflow(build_crystallization_workflow(proxies))
        assert result.completed and rabit.alert_count == 0
        assert deck.world.damage_log == ()

    def test_chemistry_and_final_state(self):
        from repro.lab.workflows import build_crystallization_workflow

        deck = build_hein_deck()
        _, proxies, _ = make_hein_rabit(deck)
        run_workflow(build_crystallization_workflow(proxies, amount_mg=4, solvent_ml=3))
        vial = deck.vials["vial_2"]
        assert vial.contents.solid_mg == pytest.approx(4.0)
        assert vial.contents.liquid_ml == pytest.approx(3.0)
        assert vial.resting_at == "grid_a2" and vial.stoppered

    def test_back_to_back_with_solubility_run(self):
        from repro.lab.workflows import build_crystallization_workflow

        deck = build_hein_deck()
        rabit, proxies, _ = make_hein_rabit(deck)
        assert run_workflow(build_solubility_workflow(proxies)).completed
        assert run_workflow(build_crystallization_workflow(proxies)).completed
        assert rabit.alert_count == 0
        assert deck.world.damage_log == ()

    def test_shaker_overspeed_is_vetoed(self):
        from repro.core.errors import SafetyViolation
        from repro.lab.workflows import build_crystallization_workflow

        deck = build_hein_deck()
        rabit, proxies, _ = make_hein_rabit(deck)
        result = run_workflow(
            build_crystallization_workflow(proxies, shake_rpm=2000.0)  # > 1500
        )
        assert result.stopped_by_rabit
        assert result.alert.rule_id == "G11"
