"""Ground-truth physics tests for the robot arm device.

These exercise the behaviours the evaluation depends on: door crashes,
protective stops, held-vial crushing, silent skips, grasp/release, and
the deliberately limited status report.
"""

import numpy as np
import pytest

from repro.devices.base import DoorState
from repro.devices.container import Vial
from repro.devices.dosing import SolidDosingDevice
from repro.devices.locations import LocationKind
from repro.devices.robot import GripperState, RobotArmDevice
from repro.devices.world import DamageSeverity, LabWorld
from repro.geometry.shapes import Cuboid
from repro.geometry.transforms import identity
from repro.geometry.walls import Workspace
from repro.kinematics.profiles import VIPERX_300


@pytest.fixture()
def world():
    w = LabWorld(
        "t", Workspace(bounds=Cuboid((-1, -1, -0.05), (1.5, 0.62, 1.0), name="room"))
    )
    w.register_frame("viperx", identity())
    w.add_surface(Cuboid((-0.6, -0.6, -0.02), (1.4, 0.6, 0.03), name="platform"))
    w.locations.define("slot", LocationKind.GRID_SLOT, {"viperx": [0.44, 0.0, 0.12]}, device="grid")
    w.locations.define("slot_safe", LocationKind.FREE, {"viperx": [0.44, 0.0, 0.25]})
    w.locations.define(
        "doser_in", LocationKind.DEVICE_INTERIOR, {"viperx": [0.15, 0.45, 0.10]},
        device="doser",
    )
    w.locations.define(
        "doser_approach", LocationKind.DEVICE_APPROACH, {"viperx": [0.15, 0.33, 0.19]},
        device="doser",
    )
    return w


@pytest.fixture()
def arm(world):
    return world.add_device(RobotArmDevice("viperx", VIPERX_300, world))


@pytest.fixture()
def doser(world):
    return world.add_device(
        SolidDosingDevice("doser", world, door_initial=DoorState.CLOSED),
        footprint=Cuboid((0.05, 0.38, 0.0), (0.25, 0.58, 0.30), name="doser"),
    )


class TestBasicMoves:
    def test_move_to_named_location(self, arm, world):
        arm.move_to_location("slot_safe")
        assert np.allclose(arm.ee_position_own_frame(), [0.44, 0.0, 0.25], atol=0.005)
        assert not arm.stalled

    def test_move_to_raw_coordinates(self, arm):
        arm.move_to_location([0.3, 0.1, 0.2])
        assert np.allclose(arm.ee_position_own_frame(), [0.3, 0.1, 0.2], atol=0.005)

    def test_home_and_sleep_poses(self, arm):
        arm.go_to_sleep_pose()
        assert np.allclose(arm.kinematics.q, VIPERX_300.sleep_q)
        arm.go_to_home_pose()
        assert np.allclose(arm.kinematics.q, VIPERX_300.home_q)

    def test_silent_skip_on_unreachable(self, arm, world):
        before = arm.ee_position_own_frame().copy()
        arm.move_to_location([0.62, -0.38, 0.35])  # beyond reach
        assert np.allclose(arm.ee_position_own_frame(), before)
        assert not world.damage_log  # nothing happened, nothing broke

    def test_status_hides_holding(self, arm):
        report = arm.status()
        assert "position" in report and "gripper" in report
        assert "holding" not in report
        assert "stalled" not in report


class TestDoorPhysics:
    def test_entering_closed_door_crashes(self, arm, doser, world):
        arm.move_to_location("doser_approach")
        arm.move_to_location("doser_in")
        assert arm.stalled
        assert any(d.kind == "door_crash" for d in world.damage_log)
        assert world.worst_damage().severity is DamageSeverity.HIGH

    def test_entering_open_door_is_clean(self, arm, doser, world):
        doser.open_door()
        arm.move_to_location("doser_approach")
        arm.move_to_location("doser_in")
        assert not arm.stalled
        assert not world.damage_log
        assert world.robot_inside("viperx") == "doser"

    def test_exit_through_closed_door_crashes(self, arm, doser, world):
        doser.open_door()
        arm.move_to_location("doser_approach")
        arm.move_to_location("doser_in")
        # Force the door shut around the arm (jam the interlock aside).
        doser.door.set_state(DoorState.CLOSED)
        arm.move_to_location("doser_approach")
        assert any(d.kind == "door_crash" for d in world.damage_log)

    def test_close_door_on_arm_inside_is_blocked_and_damages(self, arm, doser, world):
        doser.open_door()
        arm.move_to_location("doser_approach")
        arm.move_to_location("doser_in")
        doser.close_door()
        assert any(d.kind == "door_closed_on_arm" for d in world.damage_log)
        assert doser.door.is_open  # blocked by the arm


class TestCollisions:
    def test_deep_target_hits_platform(self, arm, world):
        arm.move_to_location([0.44, 0.0, 0.01])
        assert arm.stalled
        assert any(d.kind == "arm_collision" for d in world.damage_log)

    def test_wall_crossing_recorded(self, arm, world):
        # Narrow the room so a reachable target sits beyond the y wall.
        world.workspace.bounds = Cuboid((-1, -1, -0.05), (1.5, 0.55, 1.0), name="room")
        arm.move_to_location([0.0, 0.60, 0.20])
        assert arm.stalled
        assert any("wall" in d.description for d in world.damage_log)


class TestGrasping:
    def test_pick_and_place_cycle(self, arm, world):
        vial = world.add_vial(Vial("v", stoppered=False), at_location="slot")
        arm.move_to_location("slot_safe")
        arm.pick_up_vial("slot")
        assert arm.holding == "v"
        assert world.occupant("slot") is None
        arm.move_to_location("slot_safe")
        arm.place_vial("slot")
        assert arm.holding is None
        assert world.occupant("slot") == "v"
        assert not vial.broken

    def test_close_gripper_away_from_vial_grabs_nothing(self, arm, world):
        world.add_vial(Vial("v"), at_location="slot")
        arm.move_to_location("slot_safe")  # 13 cm above the vial
        arm.close_gripper()
        assert arm.holding is None

    def test_release_midair_shatters_vial(self, arm, world):
        world.add_vial(Vial("v"), at_location="slot")
        arm.move_to_location("slot_safe")
        arm.pick_up_vial("slot")
        arm.move_to_location([0.3, -0.3, 0.4])  # nowhere near a location
        arm.open_gripper()
        assert world.vial("v").broken
        assert any(d.kind == "vial_dropped" for d in world.damage_log)

    def test_gripper_state_tracks_commands(self, arm):
        assert arm.gripper is GripperState.OPEN
        arm.close_gripper()
        assert arm.gripper is GripperState.CLOSED
        arm.open_gripper()
        assert arm.gripper is GripperState.OPEN


class TestHeldVialPhysics:
    def test_low_carry_crushes_vial_but_arm_continues(self, arm, world):
        world.add_vial(Vial("v"), at_location="slot")
        world.add_device(
            SolidDosingDevice("doser", world, door_initial=DoorState.OPEN),
            footprint=Cuboid((0.05, 0.38, 0.0), (0.25, 0.58, 0.30), name="doser"),
        )
        arm.move_to_location("slot_safe")
        arm.pick_up_vial("slot")
        assert arm.holding == "v"
        arm.move_to_location("slot_safe")
        # Descend to z=0.08: the vial tip (6 cm below) enters the platform
        # slab; the bare gripper tip (2.5 cm below) clears it.
        arm.move_to_location([0.44, 0.0, 0.08])
        assert arm.holding is None
        assert world.vial("v").broken
        assert any(d.kind == "vial_crushed" for d in world.damage_log)
        assert not arm.stalled  # the arm itself never contacted anything
