"""Unit tests for repro.geometry.collision."""

import pytest

from repro.geometry.collision import (
    cuboids_overlap,
    first_collision,
    point_in_cuboid,
    polyline_intersects_cuboid,
    segment_cuboid_entry_time,
    segment_intersects_cuboid,
)
from repro.geometry.shapes import Cuboid

BOX = Cuboid((0, 0, 0), (1, 1, 1), name="box")


class TestPointAndOverlap:
    def test_point_in_cuboid(self):
        assert point_in_cuboid([0.5, 0.5, 0.5], BOX)
        assert not point_in_cuboid([1.5, 0.5, 0.5], BOX)

    def test_overlap_true_when_intersecting(self):
        other = Cuboid((0.5, 0.5, 0.5), (2, 2, 2))
        assert cuboids_overlap(BOX, other)
        assert cuboids_overlap(other, BOX)

    def test_overlap_shared_face_counts(self):
        touching = Cuboid((1, 0, 0), (2, 1, 1))
        assert cuboids_overlap(BOX, touching)

    def test_overlap_false_when_separated(self):
        assert not cuboids_overlap(BOX, Cuboid((2, 2, 2), (3, 3, 3)))


class TestSegmentEntry:
    def test_through_center(self):
        t = segment_cuboid_entry_time([-1, 0.5, 0.5], [2, 0.5, 0.5], BOX)
        assert t == pytest.approx(1 / 3)

    def test_miss_returns_none(self):
        assert segment_cuboid_entry_time([-1, 2, 2], [2, 2, 2], BOX) is None

    def test_starting_inside_enters_at_zero(self):
        assert segment_cuboid_entry_time([0.5, 0.5, 0.5], [2, 0.5, 0.5], BOX) == 0.0

    def test_segment_too_short_misses(self):
        assert segment_cuboid_entry_time([-1, 0.5, 0.5], [-0.1, 0.5, 0.5], BOX) is None

    def test_parallel_outside_slab_misses(self):
        assert segment_cuboid_entry_time([-1, 1.5, 0.5], [2, 1.5, 0.5], BOX) is None

    def test_diagonal_hit(self):
        t = segment_cuboid_entry_time([-0.5, -0.5, -0.5], [1.5, 1.5, 1.5], BOX)
        assert t == pytest.approx(0.25)


class TestSegmentIntersects:
    def test_margin_widens_box(self):
        # Passes 0.05 above the box: misses bare, hits with margin 0.1.
        a, b = [-1, 0.5, 1.05], [2, 0.5, 1.05]
        assert not segment_intersects_cuboid(a, b, BOX)
        assert segment_intersects_cuboid(a, b, BOX, margin=0.1)


class TestPolyline:
    def test_reports_first_segment_hit(self):
        waypoints = [[-1, 0.5, 2], [-1, 0.5, 0.5], [2, 0.5, 0.5]]
        hit = polyline_intersects_cuboid(waypoints, BOX)
        assert hit is not None
        assert hit.waypoint_index == 1
        assert hit.obstacle == "box"
        assert hit.point[0] == pytest.approx(0.0)

    def test_clean_polyline_returns_none(self):
        waypoints = [[-1, 2, 2], [2, 2, 2], [2, -2, 2]]
        assert polyline_intersects_cuboid(waypoints, BOX) is None


class TestFirstCollision:
    def test_orders_by_path_progress(self):
        near = Cuboid((0.0, 0, 0), (0.4, 1, 1), name="near")
        far = Cuboid((0.6, 0, 0), (1.0, 1, 1), name="far")
        hit = first_collision([[-1, 0.5, 0.5], [2, 0.5, 0.5]], [far, near])
        assert hit is not None and hit.obstacle == "near"

    def test_orders_across_segments(self):
        early = Cuboid((0, 0, 0), (1, 1, 1), name="early")
        late = Cuboid((5, 0, 0), (6, 1, 1), name="late")
        waypoints = [[-1, 0.5, 0.5], [2, 0.5, 0.5], [7, 0.5, 0.5]]
        hit = first_collision(waypoints, [late, early])
        assert hit is not None and hit.obstacle == "early"
        assert hit.waypoint_index == 0

    def test_none_when_clear(self):
        assert first_collision([[-1, 5, 5], [2, 5, 5]], [BOX]) is None

    def test_collision_hit_str(self):
        hit = first_collision([[-1, 0.5, 0.5], [2, 0.5, 0.5]], [BOX])
        assert "box" in str(hit)
