"""Differential harness: sharded execution must equal sequential, byte for byte.

The determinism contract of :mod:`repro.parallel` — per-mutant RNG from
``(base_seed, sample_index)``, exact positional merge — promises that a
``MonteCarloReport`` or ``CampaignResult`` is a pure function of its
arguments, never of the worker count, chunk size, or completion order.
This suite runs the same sweeps sequentially and under 2- and 4-worker
pools (and with observability enabled) and compares the reports'
``canonical_bytes()`` serializations — every field of every outcome, not
just headline rates.

Sample counts are small (every mutant is two full workflow runs), but
they cover multi-chunk dispatch on every pool size used here.
"""

import pytest

from repro.faults.campaign import CAMPAIGN_BUGS, run_campaign
from repro.faults.montecarlo import run_monte_carlo
from repro.obs import OBS
from repro.parallel.engine import fork_pool_available

SAMPLES = 6
#: Seed 30's first six mutants cover a Bug-C-class miss (false negative),
#: three detected-harmful edits, and two benign ones — every confusion
#: cell a correct monitor can produce, in one small window.
SEED = 30

#: Two configurations x five bugs: exercises cross-config canonical
#: ordering without running the full 48-run campaign three times.
CAMPAIGN_CONFIGS = ("initial", "modified")
CAMPAIGN_BUG_SUBSET = CAMPAIGN_BUGS[:5]

needs_fork = pytest.mark.skipif(
    not fork_pool_available(), reason="no fork start method on this platform"
)


@pytest.fixture(scope="module")
def sequential_report():
    return run_monte_carlo(samples=SAMPLES, seed=SEED, workers=1)


@needs_fork
@pytest.mark.parametrize("workers", [2, 4], ids=["workers2", "workers4"])
def test_montecarlo_parallel_matches_sequential(sequential_report, workers):
    parallel = run_monte_carlo(samples=SAMPLES, seed=SEED, workers=workers)
    assert parallel.canonical_bytes() == sequential_report.canonical_bytes()
    # Dataclass equality too — the merge reassembles the same values, not
    # merely ones that serialize alike.
    assert parallel.outcomes == sequential_report.outcomes


@needs_fork
def test_montecarlo_identical_under_observability(sequential_report):
    """Enabling obs changes metrics, never the report (2-worker pool)."""
    OBS.reset()
    OBS.enable()
    try:
        parallel = run_monte_carlo(samples=SAMPLES, seed=SEED, workers=2)
        completed = OBS.registry.get("parallel_mutants_completed_total").total()
        wall = OBS.registry.get("parallel_mutant_wall_seconds").counts(
            kind="montecarlo"
        )
    finally:
        OBS.disable()
        OBS.reset()
    assert parallel.canonical_bytes() == sequential_report.canonical_bytes()
    assert completed == SAMPLES
    assert wall["count"] == SAMPLES
    assert wall["sum"] > 0.0


@needs_fork
def test_campaign_parallel_matches_sequential():
    sequential = run_campaign(
        configs=CAMPAIGN_CONFIGS, bugs=CAMPAIGN_BUG_SUBSET, workers=1
    )
    parallel = run_campaign(
        configs=CAMPAIGN_CONFIGS, bugs=CAMPAIGN_BUG_SUBSET, workers=2
    )
    assert parallel.canonical_bytes() == sequential.canonical_bytes()
    # Canonical configuration-major order, preserved by the merge.
    assert [o.config for o in parallel.outcomes] == [
        config for config in CAMPAIGN_CONFIGS for _ in CAMPAIGN_BUG_SUBSET
    ]
    assert [o.bug.bug_id for o in parallel.outcomes] == [
        bug.bug_id for _ in CAMPAIGN_CONFIGS for bug in CAMPAIGN_BUG_SUBSET
    ]
