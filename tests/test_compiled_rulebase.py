"""Compiler edge cases: empty rulebases, revision invalidation,
duplicate-label ordering, and dispatch-table fidelity.

The differential suite (``test_compiled_differential.py``) pins verdict
equality across whole workloads; this file pins the compiler's
*structural* contract — what the dispatch tables contain and when they
are rebuilt.
"""

import pytest

from repro.core.actions import ActionCall, ActionLabel
from repro.core.rulebase import (
    CheckContext,
    Rule,
    RuleBase,
    RuleScope,
    build_default_rulebase,
)
from repro.core.state import LabState

from tests.test_core_rulebase import tiny_model


def _rule(rule_id, labels, reason=None):
    """A synthetic rule violating with *reason* (or passing on None)."""
    return Rule(
        rule_id=rule_id,
        scope=RuleScope.CUSTOM,
        description=f"synthetic rule {rule_id}",
        labels=frozenset(labels),
        check=lambda ctx, _r=reason: _r,
    )


def _ctx(call):
    return CheckContext(state=LabState(), call=call, model=tiny_model())


class TestEmptyRulebase:
    def test_compiles_to_empty_dispatch(self):
        compiled = RuleBase([]).compile()
        assert compiled.size == 0
        assert compiled.labels() == frozenset()
        assert compiled.decision_list(ActionLabel.MOVE_ROBOT) == ()

    def test_check_action_allows_everything(self):
        compiled = RuleBase([]).compile()
        call = ActionCall(ActionLabel.MOVE_ROBOT, "arm", robot="arm")
        assert compiled.check_action(_ctx(call)) is None


class TestRevisionInvalidation:
    def test_add_after_compile_leaves_snapshot_stale(self):
        rulebase = RuleBase([])
        snapshot = rulebase.compile()
        rulebase.add(_rule("X1", [ActionLabel.OPEN_DOOR], "no"))
        # compile() is a pinned snapshot: it does not follow the add.
        assert snapshot.revision != rulebase.revision
        assert snapshot.decision_list(ActionLabel.OPEN_DOOR) == ()

    def test_compiled_accessor_recompiles_on_revision_bump(self):
        rulebase = RuleBase([])
        first = rulebase.compiled()
        assert rulebase.compiled() is first  # memoized while unchanged
        rulebase.add(_rule("X1", [ActionLabel.OPEN_DOOR], "blocked"))
        second = rulebase.compiled()
        assert second is not first
        assert second.revision == rulebase.revision
        hit = second.check_action(_ctx(ActionCall(ActionLabel.OPEN_DOOR, "doser")))
        assert hit is not None and hit[0].rule_id == "X1"

    def test_rule_added_at_runtime_is_enforced_via_accessor(self):
        rulebase = build_default_rulebase([])
        rulebase.compiled()  # warm the memo, then mutate
        rulebase.add(_rule("LAB-99", [ActionLabel.GO_HOME], "homing is banned"))
        call = ActionCall(ActionLabel.GO_HOME, "arm", robot="arm")
        hit = rulebase.compiled().check_action(_ctx(call))
        assert hit is not None
        assert (hit[0].rule_id, hit[1]) == ("LAB-99", "homing is banned")


class TestDuplicateLabelOrdering:
    def test_first_registered_rule_wins(self):
        rulebase = RuleBase([
            _rule("A", [ActionLabel.OPEN_DOOR], "A fired"),
            _rule("B", [ActionLabel.OPEN_DOOR], "B fired"),
        ])
        ctx = _ctx(ActionCall(ActionLabel.OPEN_DOOR, "doser"))
        interpreted = rulebase.check_action(ctx)
        compiled = rulebase.compile().check_action(ctx)
        assert interpreted is not None and compiled is not None
        assert interpreted[0].rule_id == compiled[0].rule_id == "A"
        assert interpreted[1] == compiled[1] == "A fired"

    def test_passing_rule_falls_through_in_registration_order(self):
        rulebase = RuleBase([
            _rule("A", [ActionLabel.OPEN_DOOR], None),  # passes
            _rule("B", [ActionLabel.OPEN_DOOR], "B fired"),
        ])
        hit = rulebase.compile().check_action(
            _ctx(ActionCall(ActionLabel.OPEN_DOOR, "doser"))
        )
        assert hit is not None and hit[0].rule_id == "B"

    def test_decision_list_preserves_registration_order(self):
        rulebase = build_default_rulebase(["C1", "C2", "C3", "C4"])
        compiled = rulebase.compile()
        order = {rule.rule_id: i for i, rule in enumerate(rulebase.rules())}
        for label in compiled.labels():
            ids = [rule.rule_id for rule, _ in compiled.decision_list(label)]
            assert ids == sorted(ids, key=order.__getitem__)


class TestDispatchFidelity:
    def test_decision_lists_match_applies_to_for_every_label(self):
        rulebase = build_default_rulebase(["C1", "C2", "C3", "C4"])
        compiled = rulebase.compile()
        for label in ActionLabel:
            expected = [r.rule_id for r in rulebase.rules() if r.applies_to(label)]
            compiled_ids = [rule.rule_id for rule, _ in compiled.decision_list(label)]
            assert compiled_ids == expected, label

    def test_every_rule_appears_under_each_of_its_labels(self):
        rulebase = build_default_rulebase(["C1", "C2", "C3", "C4"])
        compiled = rulebase.compile()
        for rule in rulebase.rules():
            for label in rule.labels:
                ids = [r.rule_id for r, _ in compiled.decision_list(label)]
                assert rule.rule_id in ids

    def test_t2_place_wrapper_vs_raw_gripper_split_survives(self):
        """Table II's place precondition guards the modeled wrapper but
        not raw ``open_gripper`` — the split the belief-tracking story
        depends on must survive compilation."""
        compiled = build_default_rulebase([]).compile()
        place_ids = {r.rule_id for r, _ in compiled.decision_list(ActionLabel.PLACE_OBJECT)}
        gripper_ids = {r.rule_id for r, _ in compiled.decision_list(ActionLabel.OPEN_GRIPPER)}
        assert "T2-place" in place_ids
        assert "T2-place" not in gripper_ids

    def test_compiled_size_counts_all_rules(self):
        rulebase = build_default_rulebase(["C1", "C2", "C3", "C4"])
        assert rulebase.compile().size == len(rulebase.rules())


class TestVisitCounters:
    def test_compiled_visits_are_bounded_by_decision_list(self):
        """The counter the cold-path gate compares: interpreted visits
        every registered rule per command; compiled visits only the
        label's decision list."""
        rulebase = build_default_rulebase(["C1", "C2", "C3", "C4"])
        compiled = rulebase.compile()
        call = ActionCall(ActionLabel.OPEN_DOOR, "doser")
        ctx = _ctx(call)

        rulebase.check_action(ctx)
        assert rulebase.rules_considered == len(rulebase.rules())

        compiled.check_action(ctx)
        assert compiled.rules_considered == len(
            compiled.decision_list(ActionLabel.OPEN_DOOR)
        )
        assert 0 < compiled.rules_considered < rulebase.rules_considered

    def test_checks_invoked_identical_across_paths(self):
        rulebase = build_default_rulebase(["C1", "C2", "C3", "C4"])
        compiled = rulebase.compile()
        state = LabState()
        state.set("door_status", "doser", "open")
        ctx = CheckContext(
            state=state,
            call=ActionCall(ActionLabel.MOVE_ROBOT_INSIDE, "arm",
                            robot="arm", location="doser_in"),
            model=tiny_model(),
        )
        assert rulebase.check_action(ctx) == compiled.check_action(ctx)
        assert rulebase.checks_invoked == compiled.checks_invoked
